//! The stable (crash-surviving) half of a node's storage, with
//! intentions-list commit.
//!
//! The store keeps two crash-surviving structures: the *pages* (installed
//! object states) and the *intentions log*. A batch of updates commits
//! in the classic sequence:
//!
//! 1. append an intent record per object (new state);
//! 2. append a single commit record — **this is the atomic commit
//!    point**;
//! 3. install the intents into the pages;
//! 4. append an installed record, allowing the log to be truncated.
//!
//! A crash between (2) and (4) leaves a committed-but-uninstalled batch
//! in the log; [`StableStore::recover`] re-installs it (idempotently). A
//! crash before (2) leaves orphan intents, which recovery discards.
//! Fault-injection tests drive
//! [`StableStore::commit_batch_with_crash`] to stop at every possible
//! point and assert the all-or-nothing outcome.

use std::collections::{HashMap, HashSet};
use std::fmt;

use chroma_base::ObjectId;
use chroma_obs::{EventKind, Obs, ObsCell, Observable};
use parking_lot::Mutex;

use crate::StoreBytes;

/// Identifier of one committed (or attempted) batch of updates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BatchId(u64);

impl BatchId {
    /// Returns the raw value (for logging and tests).
    #[must_use]
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A record in the intentions log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// The new state intended for `object` under `batch`.
    Intent {
        /// The batch this intent belongs to.
        batch: BatchId,
        /// The object to be updated.
        object: ObjectId,
        /// The state to install.
        state: StoreBytes,
    },
    /// `batch` is committed: its intents must be installed.
    Commit {
        /// The committed batch.
        batch: BatchId,
    },
    /// `batch` has been fully installed; its records may be truncated.
    Installed {
        /// The installed batch.
        batch: BatchId,
    },
}

/// Where to crash inside [`StableStore::commit_batch_with_crash`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommitCrashPoint {
    /// Crash before anything is logged: the batch vanishes entirely.
    BeforeIntents,
    /// Crash after some (here: all) intents are logged but before the
    /// commit record: recovery must discard the batch.
    AfterIntents,
    /// Crash after the commit record but before installation: recovery
    /// must install the batch.
    AfterCommitRecord,
    /// Crash after installation but before the installed record:
    /// recovery must re-install (idempotently).
    AfterInstall,
}

/// Error returned by the crash-injecting commit: the simulated node died.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Crashed;

impl fmt::Display for Crashed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("simulated crash during commit")
    }
}

impl std::error::Error for Crashed {}

#[derive(Debug, Default)]
struct StableInner {
    pages: HashMap<ObjectId, StoreBytes>,
    log: Vec<LogRecord>,
    next_batch: u64,
}

/// A crash-surviving object store with intentions-list commit.
///
/// Everything inside survives
/// [`VolatileStore::crash`](crate::VolatileStore::crash) by construction — a crash simply never
/// touches this structure; what crashes *interrupt* is the multi-step
/// commit, which is what the log protects.
///
/// # Examples
///
/// ```
/// use chroma_base::ObjectId;
/// use chroma_store::{CommitCrashPoint, StableStore, StoreBytes};
///
/// let store = StableStore::new();
/// let o = ObjectId::from_raw(1);
///
/// // A crash after the commit record: recovery completes the batch.
/// let _ = store.commit_batch_with_crash(
///     vec![(o, StoreBytes::from(vec![7]))],
///     CommitCrashPoint::AfterCommitRecord,
/// );
/// assert!(store.read(o).is_none()); // not installed yet
/// store.recover();
/// assert_eq!(store.read(o).as_deref(), Some(&[7u8][..]));
/// ```
#[derive(Debug, Default)]
pub struct StableStore {
    inner: Mutex<StableInner>,
    obs: ObsCell,
}

impl StableStore {
    /// Creates an empty stable store.
    #[must_use]
    pub fn new() -> Self {
        StableStore::default()
    }

    /// Returns the installed state of `object`, if any.
    #[must_use]
    pub fn read(&self, object: ObjectId) -> Option<StoreBytes> {
        self.inner.lock().pages.get(&object).cloned()
    }

    /// Returns `true` if `object` has an installed state.
    #[must_use]
    pub fn contains(&self, object: ObjectId) -> bool {
        self.inner.lock().pages.contains_key(&object)
    }

    /// Returns the identifiers of all installed objects, unordered.
    #[must_use]
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.inner.lock().pages.keys().copied().collect()
    }

    /// Returns the number of installed objects.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Returns the number of records currently in the intentions log.
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// Commits a batch of updates atomically and returns its id.
    ///
    /// Runs the full intentions-list sequence; on return all updates are
    /// installed and the log is truncated.
    pub fn commit_batch(&self, updates: Vec<(ObjectId, StoreBytes)>) -> BatchId {
        self.commit_batch_with_crash(updates, None)
            .expect("no crash point given")
    }

    /// Commits a batch, optionally crashing at `crash_at`.
    ///
    /// With `crash_at: None` this is [`StableStore::commit_batch`]. With
    /// a crash point the sequence stops there, the store is left exactly
    /// as a real crash would leave it, and `Err(Crashed)` is returned;
    /// call [`StableStore::recover`] to model the node coming back up.
    ///
    /// # Errors
    ///
    /// Returns [`Crashed`] iff a crash point was injected.
    pub fn commit_batch_with_crash(
        &self,
        updates: Vec<(ObjectId, StoreBytes)>,
        crash_at: impl Into<Option<CommitCrashPoint>>,
    ) -> Result<BatchId, Crashed> {
        let crash_at = crash_at.into();
        let mut inner = self.inner.lock();
        let batch = BatchId(inner.next_batch);
        inner.next_batch += 1;

        if crash_at == Some(CommitCrashPoint::BeforeIntents) {
            return Err(Crashed);
        }
        for (object, state) in &updates {
            inner.log.push(LogRecord::Intent {
                batch,
                object: *object,
                state: state.clone(),
            });
        }
        if crash_at == Some(CommitCrashPoint::AfterIntents) {
            return Err(Crashed);
        }
        inner.log.push(LogRecord::Commit { batch });
        // intents + the commit record are now durably logged
        self.obs.get().emit(EventKind::WalAppend {
            records: updates.len() as u64 + 1,
        });
        if crash_at == Some(CommitCrashPoint::AfterCommitRecord) {
            return Err(Crashed);
        }
        let installed = updates.len() as u64;
        for (object, state) in updates {
            inner.pages.insert(object, state);
        }
        if crash_at == Some(CommitCrashPoint::AfterInstall) {
            return Err(Crashed);
        }
        inner.log.push(LogRecord::Installed { batch });
        Self::truncate(&mut inner);
        self.obs
            .get()
            .emit(EventKind::WalFlush { objects: installed });
        Ok(batch)
    }

    /// Recovers after a crash: installs committed-but-uninstalled
    /// batches, discards uncommitted intents, truncates the log.
    ///
    /// Idempotent — calling it any number of times (including with no
    /// crash at all) leaves the same state.
    pub fn recover(&self) {
        let mut inner = self.inner.lock();
        let committed: HashSet<BatchId> = inner
            .log
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { batch } => Some(*batch),
                _ => None,
            })
            .collect();
        let installed: HashSet<BatchId> = inner
            .log
            .iter()
            .filter_map(|r| match r {
                LogRecord::Installed { batch } => Some(*batch),
                _ => None,
            })
            .collect();
        let to_install: Vec<(BatchId, ObjectId, StoreBytes)> = inner
            .log
            .iter()
            .filter_map(|r| match r {
                LogRecord::Intent {
                    batch,
                    object,
                    state,
                } if committed.contains(batch) && !installed.contains(batch) => {
                    Some((*batch, *object, state.clone()))
                }
                _ => None,
            })
            .collect();
        let reinstalled = to_install.len() as u64;
        let mut finished: Vec<BatchId> = Vec::new();
        for (batch, object, state) in to_install {
            inner.pages.insert(object, state);
            if !finished.contains(&batch) {
                finished.push(batch);
            }
        }
        for batch in finished {
            inner.log.push(LogRecord::Installed { batch });
        }
        Self::truncate(&mut inner);
        if reinstalled > 0 {
            self.obs.get().emit(EventKind::WalFlush {
                objects: reinstalled,
            });
        }
    }

    /// Drops all log records belonging to fully installed batches and
    /// all intents of uncommitted batches (only meaningful at recovery
    /// or after a complete commit; invoked internally).
    fn truncate(inner: &mut StableInner) {
        let committed: HashSet<BatchId> = inner
            .log
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { batch } => Some(*batch),
                _ => None,
            })
            .collect();
        let installed: HashSet<BatchId> = inner
            .log
            .iter()
            .filter_map(|r| match r {
                LogRecord::Installed { batch } => Some(*batch),
                _ => None,
            })
            .collect();
        inner.log.retain(|r| {
            let batch = match r {
                LogRecord::Intent { batch, .. }
                | LogRecord::Commit { batch }
                | LogRecord::Installed { batch } => *batch,
            };
            // Keep only records of batches that are committed but not
            // yet installed (mid-flight from this store's perspective).
            committed.contains(&batch) && !installed.contains(&batch)
        });
    }
}

impl Observable for StableStore {
    /// Installs an observability handle; commits emit `WalAppend` and
    /// `WalFlush`.
    fn install_obs(&self, obs: Obs) {
        self.obs.set(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn bytes(v: u8) -> StoreBytes {
        StoreBytes::from(vec![v])
    }

    #[test]
    fn committed_batch_is_installed_and_log_truncated() {
        let store = StableStore::new();
        store.commit_batch(vec![(o(1), bytes(1)), (o(2), bytes(2))]);
        assert_eq!(store.read(o(1)).as_deref(), Some(&[1u8][..]));
        assert_eq!(store.read(o(2)).as_deref(), Some(&[2u8][..]));
        assert_eq!(store.log_len(), 0);
        assert_eq!(store.page_count(), 2);
    }

    #[test]
    fn crash_before_intents_loses_batch() {
        let store = StableStore::new();
        let err =
            store.commit_batch_with_crash(vec![(o(1), bytes(1))], CommitCrashPoint::BeforeIntents);
        assert_eq!(err, Err(Crashed));
        store.recover();
        assert!(store.read(o(1)).is_none());
        assert_eq!(store.log_len(), 0);
    }

    #[test]
    fn crash_after_intents_discards_batch() {
        let store = StableStore::new();
        let _ =
            store.commit_batch_with_crash(vec![(o(1), bytes(1))], CommitCrashPoint::AfterIntents);
        store.recover();
        assert!(store.read(o(1)).is_none());
        assert_eq!(store.log_len(), 0);
    }

    #[test]
    fn crash_after_commit_record_installs_on_recovery() {
        let store = StableStore::new();
        let _ = store.commit_batch_with_crash(
            vec![(o(1), bytes(1)), (o(2), bytes(2))],
            CommitCrashPoint::AfterCommitRecord,
        );
        assert!(store.read(o(1)).is_none());
        store.recover();
        assert_eq!(store.read(o(1)).as_deref(), Some(&[1u8][..]));
        assert_eq!(store.read(o(2)).as_deref(), Some(&[2u8][..]));
        assert_eq!(store.log_len(), 0);
    }

    #[test]
    fn crash_after_install_is_idempotent_on_recovery() {
        let store = StableStore::new();
        let _ =
            store.commit_batch_with_crash(vec![(o(1), bytes(9))], CommitCrashPoint::AfterInstall);
        assert_eq!(store.read(o(1)).as_deref(), Some(&[9u8][..]));
        store.recover();
        store.recover();
        assert_eq!(store.read(o(1)).as_deref(), Some(&[9u8][..]));
        assert_eq!(store.log_len(), 0);
    }

    #[test]
    fn recovery_with_mixed_batches() {
        let store = StableStore::new();
        // Batch 0: fully committed.
        store.commit_batch(vec![(o(1), bytes(1))]);
        // Batch 1: crashed after commit record.
        let _ = store
            .commit_batch_with_crash(vec![(o(2), bytes(2))], CommitCrashPoint::AfterCommitRecord);
        // A second, later store user crashes pre-commit. (New batch id.)
        let _ =
            store.commit_batch_with_crash(vec![(o(3), bytes(3))], CommitCrashPoint::AfterIntents);
        store.recover();
        assert_eq!(store.read(o(1)).as_deref(), Some(&[1u8][..]));
        assert_eq!(store.read(o(2)).as_deref(), Some(&[2u8][..]));
        assert!(store.read(o(3)).is_none());
        assert_eq!(store.log_len(), 0);
    }

    #[test]
    fn later_batch_overwrites_earlier_state() {
        let store = StableStore::new();
        store.commit_batch(vec![(o(1), bytes(1))]);
        store.commit_batch(vec![(o(1), bytes(2))]);
        assert_eq!(store.read(o(1)).as_deref(), Some(&[2u8][..]));
    }

    #[test]
    fn batch_ids_are_increasing() {
        let store = StableStore::new();
        let b1 = store.commit_batch(vec![(o(1), bytes(1))]);
        let b2 = store.commit_batch(vec![(o(2), bytes(2))]);
        assert!(b2 > b1);
        assert_eq!(b1.to_string(), format!("B{}", b1.as_raw()));
    }

    #[test]
    fn recovery_on_clean_store_is_a_no_op() {
        let store = StableStore::new();
        store.commit_batch(vec![(o(1), bytes(1))]);
        store.recover();
        assert_eq!(store.read(o(1)).as_deref(), Some(&[1u8][..]));
        assert_eq!(store.page_count(), 1);
    }

    #[test]
    fn empty_batch_commits_cleanly() {
        let store = StableStore::new();
        store.commit_batch(Vec::new());
        assert_eq!(store.page_count(), 0);
        assert_eq!(store.log_len(), 0);
    }
}
