//! Multi-version object chains and the commit-stamp clock behind
//! snapshot (read-only) actions.
//!
//! Strict coloured 2PL gives writers isolation, but it makes a long
//! read-only action block every writer it overlaps. This module keeps a
//! *short version chain* per object — each outermost-coloured commit
//! appends a `(colour, stamp, state)` version — plus a [`StampClock`]
//! publishing a monotone per-colour commit frontier. A reader that
//! declares itself read-only captures the frontier as a
//! [`SnapshotStamps`] vector and thereafter reads, for each object, the
//! newest version whose stamp is `<=` its captured stamp for that
//! version's colour — without ever registering in the lock table.
//!
//! Stamp rules:
//!
//! * stamps are allocated from one global monotone counter, so versions
//!   of *any* colour are totally ordered and each per-object chain is
//!   stamp-sorted (write locks serialize same-object commits);
//! * stamp `0` is reserved for *base* versions: the object's state
//!   before the first stamped commit, seeded from the committing
//!   action's undo-log before-image (so images are recorded once). A
//!   base version is visible to every snapshot; a base of `None` is a
//!   tombstone (the object did not exist yet — snapshots older than the
//!   creating commit correctly observe absence);
//! * a colour's published frontier only advances ([`StampClock::publish`]
//!   is a `fetch_max`), and the whole allocate→append→publish window is
//!   serialized per colour by [`StampClock::publish_guard`], so a
//!   capture of frontier `s` implies every same-colour version with
//!   stamp `<= s` is already in its chain.
//!
//! Chains are volatile: [`VersionChains::crash`] drops them, and
//! post-crash snapshot readers fall back to stable storage (which holds
//! exactly the newest committed states). The clock itself is *not*
//! reset on a crash — stamps are never reused, which keeps the trace
//! auditor's per-colour frontier monotone across crash/recover
//! schedules.
//!
//! Garbage collection is exact, not watermark-approximate:
//! [`VersionChains::collect`] keeps, per chain, the suffix starting at
//! the oldest version any *live* snapshot (or a fresh capture of the
//! current frontier) can select, so a version is reclaimed only once no
//! live snapshot can reach it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use chroma_base::{Colour, ObjectId, MAX_LIVE_COLOURS};
use parking_lot::{Mutex, MutexGuard};

use crate::StoreBytes;

/// Version-chain shard count (power of two; chains are sharded like the
/// lock table so snapshot reads don't serialize on one map lock).
const SHARDS: usize = 16;

/// Fibonacci multiplier used to scatter sequential object ids across
/// shards (same constant the sharded lock table uses).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A snapshot's captured per-colour commit frontier.
///
/// `stamp_for(c)` is the newest published stamp of colour `c` at
/// capture time; the snapshot sees exactly the versions with
/// `stamp == 0` (base) or `stamp <= stamp_for(version.colour)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotStamps {
    published: [u64; MAX_LIVE_COLOURS],
}

impl SnapshotStamps {
    /// A frontier with every colour at stamp 0 (sees only base
    /// versions).
    #[must_use]
    pub fn zero() -> Self {
        SnapshotStamps {
            published: [0; MAX_LIVE_COLOURS],
        }
    }

    /// Builds a frontier from explicit `(colour, stamp)` pairs, the
    /// rest at 0 (test/tooling helper).
    #[must_use]
    pub fn from_pairs(pairs: &[(Colour, u64)]) -> Self {
        let mut stamps = SnapshotStamps::zero();
        for &(colour, stamp) in pairs {
            stamps.published[colour.index()] = stamp;
        }
        stamps
    }

    /// The captured stamp for `colour`.
    #[must_use]
    pub fn stamp_for(&self, colour: Colour) -> u64 {
        self.published[colour.index()]
    }

    /// The newest stamp across all colours (reporting/lag metrics).
    #[must_use]
    pub fn max_stamp(&self) -> u64 {
        self.published.iter().copied().max().unwrap_or(0)
    }

    /// `(colour, stamp)` pairs with a non-zero stamp, in colour order.
    #[must_use]
    pub fn nonzero(&self) -> Vec<(Colour, u64)> {
        self.published
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0)
            .map(|(i, &s)| (Colour::from_index(i), s))
            .collect()
    }

    /// True if `stamp` of `colour` is visible to this snapshot.
    #[must_use]
    pub fn sees(&self, colour: Colour, stamp: u64) -> bool {
        stamp == 0 || stamp <= self.stamp_for(colour)
    }
}

/// The commit-stamp clock: one global monotone counter plus the
/// per-colour published frontier snapshot readers capture.
#[derive(Debug)]
pub struct StampClock {
    next: AtomicU64,
    published: [AtomicU64; MAX_LIVE_COLOURS],
    /// Per-colour publication gates: a committer holds its colour's
    /// gate across allocate→append→publish so same-colour stamps enter
    /// chains in order and the published frontier never runs ahead of
    /// the chains (see module docs).
    gates: [Mutex<()>; MAX_LIVE_COLOURS],
}

impl Default for StampClock {
    fn default() -> Self {
        StampClock::new()
    }
}

impl StampClock {
    /// A clock at stamp 0 with nothing published.
    #[must_use]
    pub fn new() -> Self {
        StampClock {
            next: AtomicU64::new(0),
            published: std::array::from_fn(|_| AtomicU64::new(0)),
            gates: std::array::from_fn(|_| Mutex::new(())),
        }
    }

    /// Locks `colour`'s publication gate for the allocate→append→publish
    /// window of one outermost commit.
    #[must_use]
    pub fn publish_guard(&self, colour: Colour) -> MutexGuard<'_, ()> {
        self.gates[colour.index()].lock()
    }

    /// Allocates the next commit stamp (globally monotone, starts at 1;
    /// 0 is reserved for base versions).
    #[must_use]
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The newest stamp allocated so far (0 before any commit).
    #[must_use]
    pub fn current(&self) -> u64 {
        self.next.load(Ordering::SeqCst)
    }

    /// Publishes `stamp` as `colour`'s frontier. Monotone: an older
    /// stamp never regresses a newer published one.
    pub fn publish(&self, colour: Colour, stamp: u64) {
        self.published[colour.index()].fetch_max(stamp, Ordering::SeqCst);
    }

    /// The published frontier of one colour.
    #[must_use]
    pub fn published_for(&self, colour: Colour) -> u64 {
        self.published[colour.index()].load(Ordering::SeqCst)
    }

    /// Captures the full published frontier as a snapshot stamp vector.
    #[must_use]
    pub fn capture(&self) -> SnapshotStamps {
        SnapshotStamps {
            published: std::array::from_fn(|i| self.published[i].load(Ordering::SeqCst)),
        }
    }
}

/// One committed version of an object. `state == None` is a tombstone:
/// the object did not exist at this stamp.
#[derive(Clone, Debug)]
struct Version {
    colour: Colour,
    stamp: u64,
    state: Option<StoreBytes>,
}

/// What a snapshot read found in the chains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VisibleVersion {
    /// The newest version visible to the snapshot. `state == None`
    /// means the object did not exist at the snapshot's stamps.
    Version {
        /// Colour of the commit that produced the version (colour 0
        /// for seeded base versions).
        colour: Colour,
        /// The version's commit stamp (0 for base versions).
        stamp: u64,
        /// The object state, or `None` for a tombstone.
        state: Option<StoreBytes>,
    },
    /// The object has no chain (no stamped commit touched it since
    /// startup or the last crash): read stable storage instead — its
    /// installed state predates every chained commit, so it is the
    /// base version by construction.
    NoChain,
}

/// Outcome of one [`VersionChains::collect`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Versions dropped by the sweep.
    pub reclaimed: u64,
    /// Versions still held after the sweep.
    pub retained: u64,
}

/// The per-object version chains (sharded; all volatile).
#[derive(Debug)]
pub struct VersionChains {
    shards: Vec<Mutex<HashMap<ObjectId, Vec<Version>>>>,
}

impl Default for VersionChains {
    fn default() -> Self {
        VersionChains::new()
    }
}

impl VersionChains {
    /// Empty chains.
    #[must_use]
    pub fn new() -> Self {
        VersionChains {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, object: ObjectId) -> &Mutex<HashMap<ObjectId, Vec<Version>>> {
        let idx = (object.as_raw().wrapping_mul(FIB) >> 60) as usize & (SHARDS - 1);
        &self.shards[idx]
    }

    /// Seeds `object`'s chain with a base version (stamp 0) holding
    /// `before` — the committing action's undo-log before-image —
    /// unless the object already has a chain. Idempotent. Must be
    /// called *before* the commit installs the new state in stable
    /// storage, so a concurrent snapshot reader can never fall through
    /// to stable and observe a state newer than its stamps.
    pub fn seed_base(&self, object: ObjectId, before: Option<StoreBytes>) {
        let mut shard = self.shard(object).lock();
        shard.entry(object).or_insert_with(|| {
            vec![Version {
                colour: Colour::from_index(0),
                stamp: 0,
                state: before,
            }]
        });
    }

    /// Appends the committed `state` of `object` as a `(colour, stamp)`
    /// version. Stamps must arrive in increasing order per object (the
    /// write lock serializes same-object commits; the publication gate
    /// orders same-colour stamps).
    pub fn append(&self, object: ObjectId, colour: Colour, stamp: u64, state: StoreBytes) {
        let mut shard = self.shard(object).lock();
        let chain = shard.entry(object).or_default();
        debug_assert!(
            chain.last().is_none_or(|v| v.stamp < stamp),
            "version stamps must be appended in increasing order"
        );
        chain.push(Version {
            colour,
            stamp,
            state: Some(state),
        });
    }

    /// True if `object` has a chain.
    #[must_use]
    pub fn has_chain(&self, object: ObjectId) -> bool {
        self.shard(object).lock().contains_key(&object)
    }

    /// The newest version of `object` visible to `stamps` (see module
    /// docs for the visibility rule).
    #[must_use]
    pub fn read_visible(&self, object: ObjectId, stamps: &SnapshotStamps) -> VisibleVersion {
        let shard = self.shard(object).lock();
        let Some(chain) = shard.get(&object) else {
            return VisibleVersion::NoChain;
        };
        match chain.iter().rev().find(|v| stamps.sees(v.colour, v.stamp)) {
            Some(v) => VisibleVersion::Version {
                colour: v.colour,
                stamp: v.stamp,
                state: v.state.clone(),
            },
            // A chain always starts at a base (stamp 0) version, which
            // every snapshot sees; reaching here means the chain was
            // never seeded, and stable storage still holds the base.
            None => VisibleVersion::NoChain,
        }
    }

    /// Reclaims versions no live snapshot can reach. `live` must hold
    /// the stamp vector of every open snapshot *plus one fresh capture
    /// of the current frontier* (so the newest selectable version of
    /// each chain always survives for future readers). Per chain the
    /// kept range is the suffix from the oldest version any vector
    /// selects; a vector that selects nothing pins the whole chain
    /// (only possible mid-commit, before the publish).
    pub fn collect(&self, live: &[SnapshotStamps]) -> GcStats {
        let mut stats = GcStats::default();
        for shard in &self.shards {
            let mut shard = shard.lock();
            for chain in shard.values_mut() {
                let mut keep_from = chain.len().saturating_sub(1);
                for stamps in live {
                    let selected = chain
                        .iter()
                        .rposition(|v| stamps.sees(v.colour, v.stamp))
                        .unwrap_or(0);
                    keep_from = keep_from.min(selected);
                }
                if live.is_empty() {
                    keep_from = 0;
                }
                stats.reclaimed += keep_from as u64;
                chain.drain(..keep_from);
                stats.retained += chain.len() as u64;
            }
        }
        stats
    }

    /// Chain length of one object (introspection/tests).
    #[must_use]
    pub fn chain_len(&self, object: ObjectId) -> usize {
        self.shard(object).lock().get(&object).map_or(0, Vec::len)
    }

    /// Total versions held across all chains.
    #[must_use]
    pub fn total_versions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|c| c.len() as u64).sum::<u64>())
            .sum()
    }

    /// Drops every chain (node crash: chains are volatile; stable
    /// storage holds the newest committed states, which is exactly what
    /// post-crash snapshots should see).
    pub fn crash(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn c(i: usize) -> Colour {
        Colour::from_index(i)
    }
    fn b(v: u8) -> StoreBytes {
        StoreBytes::from(vec![v])
    }

    #[test]
    fn clock_allocates_monotone_and_publishes_max() {
        let clock = StampClock::new();
        assert_eq!(clock.current(), 0);
        let s1 = clock.allocate();
        let s2 = clock.allocate();
        assert!(0 < s1 && s1 < s2);
        clock.publish(c(0), s2);
        clock.publish(c(0), s1); // older publish must not regress
        assert_eq!(clock.published_for(c(0)), s2);
        let captured = clock.capture();
        assert_eq!(captured.stamp_for(c(0)), s2);
        assert_eq!(captured.stamp_for(c(1)), 0);
        assert_eq!(captured.max_stamp(), s2);
    }

    #[test]
    fn snapshot_sees_base_and_at_or_below_its_stamp() {
        let stamps = SnapshotStamps::from_pairs(&[(c(0), 5), (c(1), 2)]);
        assert!(stamps.sees(c(0), 0));
        assert!(stamps.sees(c(0), 5));
        assert!(!stamps.sees(c(0), 6));
        assert!(stamps.sees(c(1), 2));
        assert!(!stamps.sees(c(1), 3));
        assert!(stamps.sees(c(2), 0));
        assert!(!stamps.sees(c(2), 1));
        assert_eq!(stamps.nonzero(), vec![(c(0), 5), (c(1), 2)]);
    }

    #[test]
    fn read_visible_picks_newest_at_or_below_stamp() {
        let chains = VersionChains::new();
        chains.seed_base(o(1), Some(b(10)));
        chains.append(o(1), c(0), 3, b(13));
        chains.append(o(1), c(0), 7, b(17));

        let old = SnapshotStamps::zero();
        let mid = SnapshotStamps::from_pairs(&[(c(0), 5)]);
        let new = SnapshotStamps::from_pairs(&[(c(0), 7)]);
        let read = |stamps: &SnapshotStamps| match chains.read_visible(o(1), stamps) {
            VisibleVersion::Version { stamp, state, .. } => (stamp, state),
            VisibleVersion::NoChain => panic!("chain exists"),
        };
        assert_eq!(read(&old), (0, Some(b(10))));
        assert_eq!(read(&mid), (3, Some(b(13))));
        assert_eq!(read(&new), (7, Some(b(17))));
    }

    #[test]
    fn visibility_is_per_colour() {
        let chains = VersionChains::new();
        chains.seed_base(o(1), Some(b(0)));
        chains.append(o(1), c(0), 2, b(2));
        chains.append(o(1), c(1), 5, b(5));
        // Sees colour 1 up to 5 but colour 0 not at all: the newest
        // visible version is the colour-1 one.
        let stamps = SnapshotStamps::from_pairs(&[(c(1), 5)]);
        match chains.read_visible(o(1), &stamps) {
            VisibleVersion::Version { colour, stamp, .. } => {
                assert_eq!((colour, stamp), (c(1), 5));
            }
            VisibleVersion::NoChain => panic!("chain exists"),
        }
    }

    #[test]
    fn tombstone_base_reports_absence_not_stable_fallback() {
        let chains = VersionChains::new();
        // Object created inside the committing action: before-image is
        // None, so snapshots older than the commit see a tombstone.
        chains.seed_base(o(9), None);
        chains.append(o(9), c(0), 4, b(44));
        match chains.read_visible(o(9), &SnapshotStamps::zero()) {
            VisibleVersion::Version {
                stamp: 0, state, ..
            } => assert_eq!(state, None),
            other => panic!("expected tombstone base, got {other:?}"),
        }
    }

    #[test]
    fn seed_base_is_idempotent_and_never_clobbers() {
        let chains = VersionChains::new();
        chains.seed_base(o(2), Some(b(1)));
        chains.append(o(2), c(0), 1, b(2));
        chains.seed_base(o(2), Some(b(99))); // retry after backend error
        assert_eq!(chains.chain_len(o(2)), 2);
        match chains.read_visible(o(2), &SnapshotStamps::zero()) {
            VisibleVersion::Version {
                stamp: 0, state, ..
            } => assert_eq!(state, Some(b(1))),
            other => panic!("expected original base, got {other:?}"),
        }
    }

    #[test]
    fn missing_chain_reports_no_chain() {
        let chains = VersionChains::new();
        assert_eq!(
            chains.read_visible(o(7), &SnapshotStamps::zero()),
            VisibleVersion::NoChain
        );
        assert!(!chains.has_chain(o(7)));
    }

    #[test]
    fn collect_keeps_versions_reachable_by_live_snapshots() {
        let chains = VersionChains::new();
        chains.seed_base(o(1), Some(b(0)));
        for s in 1..=6u64 {
            chains.append(o(1), c(0), s, b(u8::try_from(s).expect("small")));
        }
        assert_eq!(chains.chain_len(o(1)), 7);

        let live = SnapshotStamps::from_pairs(&[(c(0), 3)]);
        let current = SnapshotStamps::from_pairs(&[(c(0), 6)]);
        let stats = chains.collect(&[live.clone(), current.clone()]);
        // The live snapshot selects stamp 3; everything older goes.
        assert_eq!(chains.chain_len(o(1)), 4);
        assert_eq!(stats.reclaimed, 3);
        assert_eq!(stats.retained, 4);
        match chains.read_visible(o(1), &live) {
            VisibleVersion::Version { stamp, state, .. } => {
                assert_eq!((stamp, state), (3, Some(b(3))));
            }
            VisibleVersion::NoChain => panic!("live snapshot lost its version"),
        }

        // Snapshot closed: only the frontier pins versions now.
        let stats = chains.collect(&[current]);
        assert_eq!(chains.chain_len(o(1)), 1);
        assert_eq!(stats.retained, 1);
        match chains.read_visible(o(1), &SnapshotStamps::from_pairs(&[(c(0), 6)])) {
            VisibleVersion::Version { stamp, .. } => assert_eq!(stamp, 6),
            VisibleVersion::NoChain => panic!("newest version must survive"),
        }
    }

    #[test]
    fn collect_with_unpublished_tail_pins_whole_chain() {
        let chains = VersionChains::new();
        // Mid-commit: version appended but frontier not yet published —
        // a fresh capture selects nothing, which must pin the chain.
        chains.append(o(3), c(0), 9, b(9));
        let stats = chains.collect(&[SnapshotStamps::zero()]);
        assert_eq!(stats.reclaimed, 0);
        assert_eq!(chains.chain_len(o(3)), 1);
    }

    #[test]
    fn crash_drops_chains() {
        let chains = VersionChains::new();
        chains.seed_base(o(1), Some(b(1)));
        chains.append(o(1), c(0), 1, b(2));
        assert_eq!(chains.total_versions(), 2);
        chains.crash();
        assert_eq!(chains.total_versions(), 0);
        assert_eq!(
            chains.read_visible(o(1), &SnapshotStamps::zero()),
            VisibleVersion::NoChain
        );
    }
}
