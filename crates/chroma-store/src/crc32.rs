//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) for
//! intentions-log record checksums.
//!
//! Vendored in-crate: the store only needs the one classic table-driven
//! variant, and the log format pins the exact polynomial anyway, so a
//! dependency would buy nothing.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (initial value all-ones, final complement — the
/// same convention as zlib's `crc32()`).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib convention.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"intentions list commit record".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at byte {i} bit {bit}");
            }
        }
    }
}
