//! Object stores for chroma: volatile working state, stable
//! (crash-surviving) state, and the intentions-list commit that moves
//! updates from the former to the latter atomically.
//!
//! The paper's system model (§2) gives each node volatile storage, lost
//! on a crash, and optionally *stable storage*, which survives crashes;
//! the permanence-of-effect property requires that the new states of all
//! objects updated by a committing top-level (outermost-coloured) action
//! reach stable storage atomically. This crate models that storage
//! hierarchy explicitly:
//!
//! * [`VolatileStore`] — the in-memory working states actions read and
//!   write; [`VolatileStore::crash`] wipes it, as a node crash would;
//! * [`StableStore`] — installed object states plus an intentions log;
//!   batches of updates commit via the classic intentions-list protocol
//!   (log intents → log commit record → install → truncate), and
//!   [`StableStore::recover`] replays or discards partial batches
//!   idempotently;
//! * [`DiskStore`] — the same intentions-list protocol persisted to a
//!   real directory (write-ahead log + per-object files), for
//!   deployments wanting true on-disk durability;
//! * [`DurableLog`] — a generic append-only crash-surviving log used by
//!   the distributed commit protocol for prepare/decision records;
//! * [`VersionChains`] + [`StampClock`] — short per-object version
//!   chains and the published per-colour commit frontier that let
//!   declared read-only actions take consistent snapshots without
//!   touching the lock table;
//! * [`codec`] — a compact serde binary codec so applications store
//!   typed values.
//!
//! # Examples
//!
//! ```
//! use chroma_base::ObjectId;
//! use chroma_store::{StableStore, StoreBytes};
//!
//! let store = StableStore::new();
//! let o = ObjectId::from_raw(1);
//! store.commit_batch(vec![(o, StoreBytes::from(vec![1, 2, 3]))]);
//! assert_eq!(store.read(o).as_deref(), Some(&[1u8, 2, 3][..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod crc32;
mod disk;
mod stable;
mod versions;
mod volatile;
mod wal;

pub use disk::{DiskCrashPoint, DiskError, DiskStore, DiskStoreOptions, ReplayStats};
pub use stable::{BatchId, CommitCrashPoint, Crashed, LogRecord, StableStore};
pub use versions::{GcStats, SnapshotStamps, StampClock, VersionChains, VisibleVersion};
pub use volatile::VolatileStore;
pub use wal::DurableLog;

/// The byte-buffer type object states are stored as (cheaply clonable).
pub type StoreBytes = bytes::Bytes;
