//! A compact, dependency-free binary codec for object states.
//!
//! Chroma stores object states as byte buffers; this module provides the
//! bridge from typed values via serde. The format is non-self-describing
//! (like bincode): primitives are little-endian fixed width, lengths are
//! `u64` prefixes, enum variants are `u32` indices. Both ends must agree
//! on the type, which they always do — the store only ever decodes into
//! the type that encoded the buffer.
//!
//! # Examples
//!
//! ```
//! use chroma_store::codec::{from_bytes, to_bytes};
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Account {
//!     owner: String,
//!     balance: i64,
//! }
//!
//! # fn main() -> Result<(), chroma_store::codec::CodecError> {
//! let account = Account { owner: "ada".into(), balance: 120 };
//! let bytes = to_bytes(&account)?;
//! let back: Account = from_bytes(&bytes)?;
//! assert_eq!(back, account);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Errors produced while encoding or decoding object states.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix or variant index was out of range.
    InvalidValue(String),
    /// Trailing bytes remained after decoding the value.
    TrailingBytes(usize),
    /// The format cannot represent the requested shape (for example
    /// `deserialize_any` on this non-self-describing format).
    Unsupported(&'static str),
    /// An error message raised by serde itself.
    Message(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::InvalidValue(what) => write!(f, "invalid encoded value: {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            CodecError::Message(msg) => f.write_str(msg),
        }
    }
}

impl Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

/// Encodes a value to bytes.
///
/// # Errors
///
/// Returns [`CodecError`] if the value cannot be represented (for
/// example a sequence of unknown length).
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut encoder = Encoder { out: Vec::new() };
    value.serialize(&mut encoder)?;
    Ok(encoder.out)
}

/// Decodes a value from bytes produced by [`to_bytes`] for the same type.
///
/// # Errors
///
/// Returns [`CodecError`] on truncated input, invalid prefixes, or
/// trailing bytes.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut decoder = Decoder { input: bytes };
    let value = T::deserialize(&mut decoder)?;
    if decoder.input.is_empty() {
        Ok(value)
    } else {
        Err(CodecError::TrailingBytes(decoder.input.len()))
    }
}

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

macro_rules! encode_le {
    ($method:ident, $ty:ty) => {
        fn $method(self, v: $ty) -> Result<(), CodecError> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a> ser::Serializer for &'a mut Encoder {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(u8::from(v));
        Ok(())
    }

    encode_le!(serialize_i8, i8);
    encode_le!(serialize_i16, i16);
    encode_le!(serialize_i32, i32);
    encode_le!(serialize_i64, i64);
    encode_le!(serialize_i128, i128);
    encode_le!(serialize_u8, u8);
    encode_le!(serialize_u16, u16);
    encode_le!(serialize_u32, u32);
    encode_le!(serialize_u64, u64);
    encode_le!(serialize_u128, u128);
    encode_le!(serialize_f32, f32);
    encode_le!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("sequences of unknown length"))?;
        self.put_len(len);
        Ok(Compound { encoder: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { encoder: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { encoder: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.out.extend_from_slice(&variant_index.to_le_bytes());
        Ok(Compound { encoder: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("maps of unknown length"))?;
        self.put_len(len);
        Ok(Compound { encoder: self })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { encoder: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.out.extend_from_slice(&variant_index.to_le_bytes());
        Ok(Compound { encoder: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Serializer state for compound shapes; every element serializes in
/// order with no framing beyond the already-written length prefix.
pub struct Compound<'a> {
    encoder: &'a mut Encoder,
}

macro_rules! impl_compound {
    ($trait:path, $fn:ident) => {
        impl<'a> $trait for Compound<'a> {
            type Ok = ();
            type Error = CodecError;

            fn $fn<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut *self.encoder)
            }

            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

impl_compound!(ser::SerializeSeq, serialize_element);
impl_compound!(ser::SerializeTuple, serialize_element);
impl_compound!(ser::SerializeTupleStruct, serialize_field);
impl_compound!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut *self.encoder)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.encoder)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.encoder)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.encoder)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEnd);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        let bytes = self.take(8)?;
        let len = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
        usize::try_from(len).map_err(|_| CodecError::InvalidValue(format!("length {len}")))
    }
}

macro_rules! decode_le {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let bytes = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().expect("sized")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported(
            "deserialize_any on a non-self-describing format",
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(CodecError::InvalidValue(format!("bool byte {other}"))),
        }
    }

    decode_le!(deserialize_i8, visit_i8, i8, 1);
    decode_le!(deserialize_i16, visit_i16, i16, 2);
    decode_le!(deserialize_i32, visit_i32, i32, 4);
    decode_le!(deserialize_i64, visit_i64, i64, 8);
    decode_le!(deserialize_i128, visit_i128, i128, 16);
    decode_le!(deserialize_u8, visit_u8, u8, 1);
    decode_le!(deserialize_u16, visit_u16, u16, 2);
    decode_le!(deserialize_u32, visit_u32, u32, 4);
    decode_le!(deserialize_u64, visit_u64, u64, 8);
    decode_le!(deserialize_u128, visit_u128, u128, 16);
    decode_le!(deserialize_f32, visit_f32, f32, 4);
    decode_le!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let bytes = self.take(4)?;
        let raw = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        let c = char::from_u32(raw)
            .ok_or_else(|| CodecError::InvalidValue(format!("char scalar {raw:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|e| CodecError::InvalidValue(format!("utf-8: {e}")))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(CodecError::InvalidValue(format!("option tag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_map(Counted {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(Enum { decoder: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("identifier deserialization"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported(
            "ignored_any on a non-self-describing format",
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.decoder).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.decoder).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.decoder)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct Enum<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
}

impl<'de> de::EnumAccess<'de> for Enum<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let bytes = self.decoder.take(4)?;
        let index = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for Enum<'_, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.decoder)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.decoder, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.decoder, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::HashMap;

    fn round_trip<T>(value: T)
    where
        T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug,
    {
        let bytes = to_bytes(&value).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(true);
        round_trip(false);
        round_trip(-5i8);
        round_trip(12345i16);
        round_trip(-7_000_000i32);
        round_trip(i64::MIN);
        round_trip(u64::MAX);
        round_trip(3.5f32);
        round_trip(-2.25f64);
        round_trip('λ');
        round_trip(String::from("hello, world"));
        round_trip(String::new());
    }

    #[test]
    fn collections_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<String>::new());
        round_trip(Some(42u8));
        round_trip(Option::<u8>::None);
        round_trip((1u8, String::from("x"), vec![true, false]));
        let mut map = HashMap::new();
        map.insert(String::from("a"), 1i64);
        map.insert(String::from("b"), -2i64);
        round_trip(map);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Shape {
        Point,
        Circle(f64),
        Rect { w: u32, h: u32 },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        shapes: Vec<Shape>,
        tag: Option<Box<Nested>>,
    }

    #[test]
    fn enums_and_nested_structs_round_trip() {
        round_trip(Shape::Point);
        round_trip(Shape::Circle(2.5));
        round_trip(Shape::Rect { w: 3, h: 4 });
        round_trip(Nested {
            name: "outer".into(),
            shapes: vec![Shape::Point, Shape::Rect { w: 1, h: 2 }],
            tag: Some(Box::new(Nested {
                name: "inner".into(),
                shapes: vec![],
                tag: None,
            })),
        });
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&12345u64).unwrap();
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert_eq!(err, CodecError::UnexpectedEnd);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0xFF);
        let err = from_bytes::<u8>(&bytes).unwrap_err();
        assert_eq!(err, CodecError::TrailingBytes(1));
    }

    #[test]
    fn invalid_bool_is_an_error() {
        let err = from_bytes::<bool>(&[7]).unwrap_err();
        assert!(matches!(err, CodecError::InvalidValue(_)));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        // length 1, byte 0xFF: not valid UTF-8.
        let mut bytes = 1u64.to_le_bytes().to_vec();
        bytes.push(0xFF);
        let err = from_bytes::<String>(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::InvalidValue(_)));
    }

    #[test]
    fn display_is_informative() {
        assert!(CodecError::UnexpectedEnd.to_string().contains("end"));
        assert!(CodecError::TrailingBytes(3).to_string().contains('3'));
    }
}
