//! Edge-case and baseline-comparison tests for the §4 applications.

use chroma_apps::{
    schedule_meeting, BulletinBoard, Diary, DistMake, Ledger, Makefile, ScheduleOutcome,
};
use chroma_core::{ActionError, Runtime, RuntimeConfig};
use std::time::Duration;

fn rt_fast() -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_millis(300)),
        })
        .build()
}

// ---------------------------------------------------------------------
// Distributed make: the monolithic baseline and deeper makefiles
// ---------------------------------------------------------------------

const DIAMOND: &str = "app: left.o right.o\n\
                       \tld app\n\
                       left.o: common.h left.c\n\tcc left\n\
                       right.o: common.h right.c\n\tcc right\n";

fn diamond_engine() -> (Runtime, DistMake) {
    let rt = Runtime::builder().build();
    let make = DistMake::new(&rt, Makefile::parse(DIAMOND).unwrap()).unwrap();
    for src in ["common.h", "left.c", "right.c"] {
        make.write_source(src, src).unwrap();
    }
    (rt, make)
}

#[test]
fn monolithic_make_builds_correctly_when_nothing_fails() {
    let (_rt, make) = diamond_engine();
    let report = make.make_monolithic("app").unwrap();
    assert_eq!(report.rebuilt.len(), 3);
    assert_eq!(*report.rebuilt.last().unwrap(), "app");
    // Incremental no-op afterwards.
    assert!(make.make_monolithic("app").unwrap().rebuilt.is_empty());
}

#[test]
fn monolithic_make_loses_all_work_on_failure() {
    let (_rt, make) = diamond_engine();
    make.inject_failure("app");
    assert!(make.make_monolithic("app").is_err());
    // THE contrast with the serializing make: the completed compiles
    // were rolled back too.
    assert_eq!(make.file_state("left.o").unwrap().stamp, 0);
    assert_eq!(make.file_state("right.o").unwrap().stamp, 0);
    // Retry redoes everything.
    make.clear_failure("app");
    let before = make.commands_run();
    make.make_monolithic("app").unwrap();
    assert_eq!(make.commands_run() - before, 3);
}

#[test]
fn serializing_make_keeps_diamond_prerequisites_on_failure() {
    let (_rt, make) = diamond_engine();
    make.inject_failure("app");
    assert!(make.make("app").is_err());
    assert!(make.file_state("left.o").unwrap().stamp > 0);
    assert!(make.file_state("right.o").unwrap().stamp > 0);
    make.clear_failure("app");
    let before = make.commands_run();
    make.make("app").unwrap();
    assert_eq!(make.commands_run() - before, 1); // only the link
}

#[test]
fn shared_header_touch_rebuilds_both_sides() {
    let (_rt, make) = diamond_engine();
    make.make("app").unwrap();
    make.touch("common.h").unwrap();
    let report = make.make("app").unwrap();
    let mut rebuilt = report.rebuilt.clone();
    rebuilt.sort();
    assert_eq!(rebuilt, vec!["app", "left.o", "right.o"]);
}

#[test]
fn unknown_target_is_an_error() {
    let (_rt, make) = diamond_engine();
    assert!(make.make("nonexistent").is_err());
    assert!(make.write_source("nonexistent", "x").is_err());
    assert!(make.file_state("nonexistent").is_err());
}

#[test]
fn failed_make_releases_all_fences() {
    let (rt, make) = diamond_engine();
    make.inject_failure("left.o");
    assert!(make.make("app").is_err());
    // Nothing stays locked: an editor can immediately modify sources.
    make.clear_failure("left.o");
    make.write_source("left.c", "edited").unwrap();
    assert_eq!(rt.lock_entry_count(), 0);
}

// ---------------------------------------------------------------------
// Diary scheduling under concurrency
// ---------------------------------------------------------------------

#[test]
fn two_meetings_over_shared_diaries_get_distinct_slots() {
    let rt = Runtime::builder().build();
    let shared = Diary::create(&rt, "shared", 4).unwrap();
    let a = Diary::create(&rt, "a", 4).unwrap();
    let b = Diary::create(&rt, "b", 4).unwrap();
    let first = schedule_meeting(&rt, &[shared.clone(), a.clone()], "standup").unwrap();
    let second = schedule_meeting(&rt, &[shared.clone(), b.clone()], "review").unwrap();
    let (ScheduleOutcome::Booked { slot: s1 }, ScheduleOutcome::Booked { slot: s2 }) =
        (first, second)
    else {
        panic!("both meetings should book");
    };
    assert_ne!(s1, s2, "the shared diary forced distinct slots");
}

#[test]
fn concurrent_schedulers_never_double_book() {
    let rt = rt_fast();
    let shared = Diary::create(&rt, "shared", 6).unwrap();
    let mut handles = Vec::new();
    for i in 0..3 {
        let rt = rt.clone();
        let shared = shared.clone();
        handles.push(std::thread::spawn(move || {
            let mine = Diary::create(&rt, &format!("p{i}"), 6).unwrap();
            // Retry on contention-induced failures.
            for _ in 0..20 {
                match schedule_meeting(&rt, &[shared.clone(), mine.clone()], &format!("m{i}")) {
                    Ok(outcome) => return Some(outcome),
                    Err(e) if e.is_deadlock_victim() || matches!(e, ActionError::Lock(_)) => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            None
        }));
    }
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // All three booked distinct slots in the shared diary.
    let mut slots = Vec::new();
    for outcome in outcomes {
        match outcome.expect("scheduler starved") {
            ScheduleOutcome::Booked { slot } => slots.push(slot),
            ScheduleOutcome::NoSlot => {}
        }
    }
    slots.sort_unstable();
    let before = slots.len();
    slots.dedup();
    assert_eq!(before, slots.len(), "double booking: {slots:?}");
    assert_eq!(before, 3);
}

// ---------------------------------------------------------------------
// Bulletin board & ledger misc
// ---------------------------------------------------------------------

#[test]
fn board_reads_from_within_an_action_are_isolated() {
    let rt = rt_fast();
    let board = BulletinBoard::create(&rt).unwrap();
    board.post_async("a", "first").join().unwrap();
    rt.atomic(|app| {
        let posts = board.posts_from(app)?;
        assert_eq!(posts.len(), 1);
        // While this action holds a read lock on the board, a poster
        // must wait — posts are serializable with readers.
        let post = board.post_async("b", "second");
        std::thread::sleep(Duration::from_millis(50));
        assert!(!post.is_finished(), "poster should be blocked");
        drop(post); // detach; it completes after we commit
        Ok(())
    })
    .unwrap();
    // Eventually both posts are there.
    for _ in 0..100 {
        if board.posts().unwrap().len() == 2 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("second post never landed");
}

#[test]
fn ledger_crash_preserves_charges() {
    let rt = Runtime::builder().build();
    let ledger = Ledger::create(&rt).unwrap();
    rt.atomic(|a| ledger.charge_from(a, "x", "op", 2)).unwrap();
    rt.crash_and_recover();
    assert_eq!(ledger.total().unwrap(), 2);
    assert_eq!(ledger.charges().unwrap().len(), 1);
}

#[test]
fn makefile_with_comments_and_blank_lines_parses() {
    let mk = Makefile::parse(
        "# build rules\n\
         \n\
         app: main.c\n\
         \tcc main.c\n\
         \t-o app\n\
         # trailing comment\n",
    )
    .unwrap();
    assert_eq!(mk.rule("app").unwrap().command, "cc main.c && -o app");
}
