//! Name server (§4 ii): directory updates as independent actions, plus
//! a replicated deployment over the simulated distributed system.
//!
//! "An application level action, upon finding out that certain objects
//! are unavailable due to a node crash, can invoke a top-level
//! independent action to update the name server asynchronously, while
//! carrying on with the main computation. There is no reason to undo
//! the name server updates should the invoking action abort."

use std::collections::HashMap;

use chroma_base::{NodeId, ObjectId};
use chroma_core::{ActionError, ActionScope, ColourSet, Runtime};
use chroma_dist::{ReplicatedObject, Sim};
use chroma_structures::{independent_async, IndependentHandle};
use serde::{Deserialize, Serialize};

/// The directory state: names bound to locations.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Directory {
    bindings: HashMap<String, String>,
}

/// A local name server whose operations are atomic actions.
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
/// use chroma_apps::NameServer;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let ns = NameServer::create(&rt)?;
/// ns.register("printer", "node-3")?;
/// assert_eq!(ns.lookup("printer")?, Some("node-3".to_owned()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct NameServer {
    rt: Runtime,
    directory: ObjectId,
}

impl NameServer {
    /// Creates an empty name server.
    ///
    /// # Errors
    ///
    /// Codec failures (never occur for the empty state).
    pub fn create(rt: &Runtime) -> Result<Self, ActionError> {
        let directory = rt.create_object(&Directory::default())?;
        Ok(NameServer {
            rt: rt.clone(),
            directory,
        })
    }

    /// Binds `name` to `location` (top-level atomic action). Returns
    /// the previous binding.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn register(&self, name: &str, location: &str) -> Result<Option<String>, ActionError> {
        let directory = self.directory;
        let (name, location) = (name.to_owned(), location.to_owned());
        self.rt.atomic(move |a| {
            a.modify(directory, |d: &mut Directory| {
                d.bindings.insert(name, location)
            })
        })
    }

    /// Removes the binding of `name`; returns it if it existed.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn remove(&self, name: &str) -> Result<Option<String>, ActionError> {
        let directory = self.directory;
        let name = name.to_owned();
        self.rt
            .atomic(move |a| a.modify(directory, |d: &mut Directory| d.bindings.remove(&name)))
    }

    /// Looks up `name` (top-level atomic action).
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn lookup(&self, name: &str) -> Result<Option<String>, ActionError> {
        let directory = self.directory;
        let name = name.to_owned();
        self.rt
            .atomic(move |a| Ok(a.read::<Directory>(directory)?.bindings.get(&name).cloned()))
    }

    /// Re-binds `name` asynchronously from inside an application action
    /// (the §4 ii scenario: the application noticed a stale location
    /// and repairs the directory while carrying on). The update is a
    /// detached top-level independent action: it survives whatever
    /// happens to the invoker.
    #[must_use]
    pub fn update_async(&self, name: &str, location: &str) -> IndependentHandle<Option<String>> {
        let directory = self.directory;
        let (name, location) = (name.to_owned(), location.to_owned());
        independent_async(&self.rt, move |a| {
            a.modify(directory, |d: &mut Directory| {
                d.bindings.insert(name, location)
            })
        })
    }

    /// Looks up from within an existing action (shares its isolation).
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn lookup_from(
        &self,
        scope: &ActionScope<'_>,
        name: &str,
    ) -> Result<Option<String>, ActionError> {
        Ok(scope
            .read::<Directory>(self.directory)?
            .bindings
            .get(name)
            .cloned())
    }

    /// Runs `body` with a scope suitable for grouped updates (a single
    /// top-level action over the directory).
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting.
    pub fn batch<R>(
        &self,
        body: impl FnOnce(&mut ActionScope<'_>, ObjectId) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let directory = self.directory;
        let colour = self.rt.universe().fresh()?;
        let result = self
            .rt
            .run_top(ColourSet::single(colour), colour, |a| body(a, directory));
        self.rt.universe().release(colour);
        result
    }
}

/// A name server replicated across simulated nodes for availability
/// (the paper: "for the sake of availability and consistency it is
/// desirable that a name server be replicated").
///
/// Bindings live in one replicated directory object; writes go to all
/// available replicas through two-phase commit, reads are served by any
/// single up-to-date replica.
#[derive(Clone, Debug)]
pub struct ReplicatedNameServer {
    replica: ReplicatedObject,
}

impl ReplicatedNameServer {
    /// Creates a replicated name server over `members`.
    pub fn create(sim: &mut Sim, object: ObjectId, members: &[NodeId]) -> Self {
        let initial =
            chroma_store::codec::to_bytes(&Directory::default()).expect("directory encodes");
        let replica = ReplicatedObject::create(sim, object, members, &initial);
        ReplicatedNameServer { replica }
    }

    /// Binds `name` to `location`; returns `false` if no replica is
    /// available. Run the simulation to quiescence to settle the write.
    pub fn register(&self, sim: &mut Sim, name: &str, location: &str) -> bool {
        let Some((_, bytes)) = self.replica.read(sim) else {
            return false;
        };
        let mut directory: Directory = chroma_store::codec::from_bytes(&bytes).unwrap_or_default();
        directory
            .bindings
            .insert(name.to_owned(), location.to_owned());
        let encoded = chroma_store::codec::to_bytes(&directory).expect("directory encodes");
        self.replica.write(sim, &encoded).is_some()
    }

    /// Looks up `name` from any available up-to-date replica.
    #[must_use]
    pub fn lookup(&self, sim: &Sim, name: &str) -> Option<String> {
        let (_, bytes) = self.replica.read(sim)?;
        let directory: Directory = chroma_store::codec::from_bytes(&bytes).ok()?;
        directory.bindings.get(name).cloned()
    }

    /// Returns the underlying replicated object (for fault injection in
    /// tests and experiments).
    #[must_use]
    pub fn replica(&self) -> &ReplicatedObject {
        &self.replica
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_remove() {
        let rt = Runtime::builder().build();
        let ns = NameServer::create(&rt).unwrap();
        assert_eq!(ns.register("svc", "n1").unwrap(), None);
        assert_eq!(ns.lookup("svc").unwrap(), Some("n1".to_owned()));
        assert_eq!(ns.register("svc", "n2").unwrap(), Some("n1".to_owned()));
        assert_eq!(ns.remove("svc").unwrap(), Some("n2".to_owned()));
        assert_eq!(ns.lookup("svc").unwrap(), None);
    }

    #[test]
    fn async_update_survives_invoker_abort() {
        let rt = Runtime::builder().build();
        let ns = NameServer::create(&rt).unwrap();
        ns.register("svc", "dead-node").unwrap();
        let result: Result<(), ActionError> = rt.atomic(|_a| {
            // The application discovers the stale binding and repairs it
            // asynchronously, then itself fails.
            let handle = ns.update_async("svc", "live-node");
            handle.join()?;
            Err(ActionError::failed("main computation failed"))
        });
        assert!(result.is_err());
        // "There is no reason to undo the name server updates."
        assert_eq!(ns.lookup("svc").unwrap(), Some("live-node".to_owned()));
    }

    #[test]
    fn replicated_name_server_survives_replica_crash() {
        let mut sim = Sim::new(31);
        let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
        let ns = ReplicatedNameServer::create(&mut sim, ObjectId::from_raw(500), &nodes);
        assert!(ns.register(&mut sim, "printer", "n9"));
        sim.run_to_quiescence();
        sim.schedule_crash(nodes[0], 0);
        sim.run_to_quiescence();
        assert_eq!(ns.lookup(&sim, "printer"), Some("n9".to_owned()));
        // Updates continue with a member down.
        assert!(ns.register(&mut sim, "scanner", "n4"));
        sim.run_to_quiescence();
        assert_eq!(ns.lookup(&sim, "scanner"), Some("n4".to_owned()));
    }

    #[test]
    fn replicated_name_server_unavailable_when_all_down() {
        let mut sim = Sim::new(32);
        let nodes = vec![sim.add_node(), sim.add_node()];
        let ns = ReplicatedNameServer::create(&mut sim, ObjectId::from_raw(500), &nodes);
        sim.schedule_crash(nodes[0], 0);
        sim.schedule_crash(nodes[1], 0);
        sim.run_to_quiescence();
        assert_eq!(ns.lookup(&sim, "anything"), None);
        assert!(!ns.register(&mut sim, "x", "y"));
    }

    #[test]
    fn recovered_replica_serves_fresh_bindings() {
        let mut sim = Sim::new(33);
        let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
        let ns = ReplicatedNameServer::create(&mut sim, ObjectId::from_raw(500), &nodes);
        sim.schedule_crash(nodes[2], 0);
        sim.run_to_quiescence();
        assert!(ns.register(&mut sim, "svc", "n1"));
        sim.run_to_quiescence();
        sim.schedule_recover(nodes[2], 0);
        sim.run_to_quiescence();
        // Crash the two replicas that saw the write: the recovered one
        // must have caught up.
        sim.schedule_crash(nodes[0], 0);
        sim.schedule_crash(nodes[1], 0);
        sim.run_to_quiescence();
        assert_eq!(ns.lookup(&sim, "svc"), Some("n1".to_owned()));
    }
}
