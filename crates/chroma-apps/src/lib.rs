//! The paper's five example applications (§4), built on the chroma
//! action structures.
//!
//! | Application | Paper | Structure used | Module |
//! |---|---|---|---|
//! | Bulletin board | §4 i | top-level independent actions + compensation | [`bulletin_board`] |
//! | Name server | §4 ii | async independent updates; replication over 2PC | [`name_server`] |
//! | Billing / accounting | §4 iii | independent charges that survive client aborts | [`billing`] |
//! | Distributed make | §4 iv, fig. 8 | serializing action, concurrent steps | [`dmake`] |
//! | Meeting scheduler | §4 v, fig. 9 | glued chain with per-round hand-over | [`diary`] |
//!
//! Each application is a small but complete program over the public
//! API; the experiment harness (`chroma-bench`) drives them to
//! regenerate the corresponding figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod bulletin_board;
pub mod diary;
pub mod dmake;
pub mod name_server;

pub use billing::{Charge, Ledger};
pub use bulletin_board::{BulletinBoard, Post};
pub use diary::{schedule_meeting, Diary, ScheduleOutcome, Slot};
pub use dmake::{DistMake, FileState, MakeReport, Makefile, Rule};
pub use name_server::{Directory, NameServer, ReplicatedNameServer};
