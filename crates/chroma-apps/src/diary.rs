//! Arranging a meeting (§4 v, fig. 9): glued actions over personal
//! diaries.
//!
//! "Glued actions are useful in structuring such applications, since
//! locks on diary entries can be passed from one top-level action to
//! the other. … Each Ii is a top-level action, so its results survive
//! crashes; at the same time meeting slots not found acceptable are
//! released (and not handed over to Ii+1) thereby ensuring that entries
//! in diaries are not unnecessarily kept locked."
//!
//! Each participant owns a [`Diary`] whose slots are *individually
//! lockable* persistent objects. Scheduling proceeds in rounds: round
//! *i* consults participant *i*'s diary, intersects their free slots
//! with the candidates handed over by the previous round, hands the
//! survivors (in every consulted diary) to the next round, and lets the
//! rejected slots go free immediately. The final round books the chosen
//! slot in all diaries.

use chroma_core::{ActionError, ObjectId, Runtime};
use chroma_structures::GluedChain;
use serde::{Deserialize, Serialize};

/// One diary slot: free or holding an appointment.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// The appointment text, if booked.
    pub appointment: Option<String>,
}

/// A personal diary: one individually lockable object per time slot.
#[derive(Clone, Debug)]
pub struct Diary {
    /// The owner's name.
    pub owner: String,
    slots: Vec<ObjectId>,
}

impl Diary {
    /// Creates a diary with `slot_count` free slots.
    ///
    /// # Errors
    ///
    /// Codec failures creating slot objects.
    pub fn create(rt: &Runtime, owner: &str, slot_count: usize) -> Result<Self, ActionError> {
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            slots.push(rt.create_object(&Slot::default())?);
        }
        Ok(Diary {
            owner: owner.to_owned(),
            slots,
        })
    }

    /// Returns the number of slots.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Returns the object id of slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn slot(&self, index: usize) -> ObjectId {
        self.slots[index]
    }

    /// Books an appointment directly (a top-level atomic action), e.g.
    /// to pre-populate diaries.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn book(&self, rt: &Runtime, index: usize, text: &str) -> Result<(), ActionError> {
        let slot = self.slot(index);
        let text = text.to_owned();
        rt.atomic(move |a| a.modify(slot, |s: &mut Slot| s.appointment = Some(text)))
    }

    /// Reads the committed state of slot `index`.
    ///
    /// # Errors
    ///
    /// Codec failures.
    pub fn slot_state(&self, rt: &Runtime, index: usize) -> Result<Slot, ActionError> {
        rt.read_committed(self.slot(index))
    }
}

/// The outcome of a scheduling run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleOutcome {
    /// A slot was found and booked in every diary.
    Booked {
        /// The chosen slot index.
        slot: usize,
    },
    /// No slot suits everyone; nothing was booked.
    NoSlot,
}

/// Schedules `title` across `diaries` using a glued chain (fig. 9).
///
/// Round *i* (`i = 1..n`) reads participant *i*'s candidate slots,
/// narrows the candidate set, and hands the surviving slot objects (of
/// all consulted diaries) to the next round; a final round books the
/// earliest surviving slot everywhere. Rejected slots are released
/// mid-chain, not held to the end.
///
/// Every round is top-level for permanence, so a crash between rounds
/// loses no completed negotiation state (the booked appointments of the
/// final round are all-or-nothing, since they are written by the one
/// final step).
///
/// # Errors
///
/// Lock or codec failures; capacity errors if `diaries` outgrows the
/// chain (it cannot — capacity is sized from the input).
pub fn schedule_meeting(
    rt: &Runtime,
    diaries: &[Diary],
    title: &str,
) -> Result<ScheduleOutcome, ActionError> {
    if diaries.is_empty() {
        return Ok(ScheduleOutcome::NoSlot);
    }
    let slot_count = diaries.iter().map(Diary::slot_count).min().unwrap_or(0);
    let chain = GluedChain::begin(rt, diaries.len() + 1)?;
    let mut candidates: Vec<usize> = (0..slot_count).collect();

    for (round, diary) in diaries.iter().enumerate() {
        let consulted = &diaries[..=round];
        let surviving = chain.step(|s| {
            // Read this participant's candidate slots and narrow.
            let mut surviving = Vec::new();
            for &slot_index in &candidates {
                let slot: Slot = s.read(diary.slot(slot_index))?;
                if slot.appointment.is_none() {
                    surviving.push(slot_index);
                }
            }
            // Hand over the survivors in *every* consulted diary, so no
            // one can grab them between rounds; rejected slots are not
            // handed over and become free when this round's gap closes.
            for d in consulted {
                for &slot_index in &surviving {
                    s.hand_over(d.slot(slot_index))?;
                }
            }
            Ok(surviving)
        })?;
        candidates = surviving;
        if candidates.is_empty() {
            chain.end()?;
            return Ok(ScheduleOutcome::NoSlot);
        }
    }

    // Final round: book the earliest surviving slot in every diary.
    let chosen = candidates[0];
    chain.step(|s| {
        for diary in diaries {
            let object = diary.slot(chosen);
            s.modify(object, |slot: &mut Slot| {
                slot.appointment = Some(title.to_owned());
            })?;
        }
        Ok(())
    })?;
    chain.end()?;
    Ok(ScheduleOutcome::Booked { slot: chosen })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chroma_core::RuntimeConfig;
    use std::time::Duration;

    fn rt_fast() -> Runtime {
        Runtime::builder()
            .config(RuntimeConfig {
                lock_timeout: Some(Duration::from_millis(300)),
            })
            .build()
    }

    #[test]
    fn finds_the_common_free_slot() {
        let rt = Runtime::builder().build();
        let a = Diary::create(&rt, "ada", 4).unwrap();
        let b = Diary::create(&rt, "bob", 4).unwrap();
        let c = Diary::create(&rt, "cleo", 4).unwrap();
        a.book(&rt, 0, "dentist").unwrap();
        b.book(&rt, 1, "gym").unwrap();
        c.book(&rt, 0, "call").unwrap();
        let outcome = schedule_meeting(&rt, &[a.clone(), b.clone(), c.clone()], "kickoff").unwrap();
        assert_eq!(outcome, ScheduleOutcome::Booked { slot: 2 });
        for diary in [&a, &b, &c] {
            assert_eq!(
                diary.slot_state(&rt, 2).unwrap().appointment.as_deref(),
                Some("kickoff")
            );
        }
    }

    #[test]
    fn reports_no_slot_when_calendars_conflict() {
        let rt = Runtime::builder().build();
        let a = Diary::create(&rt, "ada", 2).unwrap();
        let b = Diary::create(&rt, "bob", 2).unwrap();
        a.book(&rt, 0, "x").unwrap();
        b.book(&rt, 1, "y").unwrap();
        a.book(&rt, 1, "z").unwrap();
        let outcome = schedule_meeting(&rt, &[a.clone(), b], "doomed").unwrap();
        assert_eq!(outcome, ScheduleOutcome::NoSlot);
        // Nothing was booked anywhere.
        assert_eq!(
            a.slot_state(&rt, 0).unwrap().appointment.as_deref(),
            Some("x")
        );
    }

    #[test]
    fn rejected_slots_are_usable_mid_negotiation() {
        let rt = rt_fast();
        let a = Diary::create(&rt, "ada", 3).unwrap();
        let b = Diary::create(&rt, "bob", 3).unwrap();
        b.book(&rt, 2, "busy").unwrap();

        // Drive the chain manually to observe the mid-chain state.
        let chain = GluedChain::begin(&rt, 3).unwrap();
        // Round 1 (ada): all three slots free, hand over all.
        chain
            .step(|s| {
                for i in 0..3 {
                    let slot: Slot = s.read(a.slot(i))?;
                    assert!(slot.appointment.is_none());
                    s.hand_over(a.slot(i))?;
                }
                Ok(())
            })
            .unwrap();
        // Round 2 (bob): slot 2 is busy -> survivors {0, 1}.
        chain
            .step(|s| {
                for i in 0..2 {
                    s.hand_over(a.slot(i))?;
                    s.hand_over(b.slot(i))?;
                }
                let _: Slot = s.read(b.slot(2))?;
                Ok(())
            })
            .unwrap();
        // Ada's slot 2 was rejected: someone else can book it NOW,
        // while the negotiation continues.
        a.book(&rt, 2, "walk-in").unwrap();
        // Slot 0 is still fenced.
        assert!(a.book(&rt, 0, "intruder").is_err());
        chain.end().unwrap();
    }

    #[test]
    fn single_participant_books_first_free_slot() {
        let rt = Runtime::builder().build();
        let a = Diary::create(&rt, "solo", 2).unwrap();
        let outcome = schedule_meeting(&rt, std::slice::from_ref(&a), "standup").unwrap();
        assert_eq!(outcome, ScheduleOutcome::Booked { slot: 0 });
        assert_eq!(
            a.slot_state(&rt, 0).unwrap().appointment.as_deref(),
            Some("standup")
        );
    }

    #[test]
    fn no_participants_is_a_no_op() {
        let rt = Runtime::builder().build();
        assert_eq!(
            schedule_meeting(&rt, &[], "ghost").unwrap(),
            ScheduleOutcome::NoSlot
        );
    }

    #[test]
    fn booking_is_atomic_across_diaries() {
        // The final round writes every diary in one step: all-or-none.
        let rt = rt_fast();
        let a = Diary::create(&rt, "ada", 2).unwrap();
        let b = Diary::create(&rt, "bob", 2).unwrap();
        let outcome = schedule_meeting(&rt, &[a.clone(), b.clone()], "sync").unwrap();
        let ScheduleOutcome::Booked { slot } = outcome else {
            panic!("expected booking");
        };
        let a_booked = a.slot_state(&rt, slot).unwrap().appointment.is_some();
        let b_booked = b.slot_state(&rt, slot).unwrap().appointment.is_some();
        assert_eq!(a_booked, b_booked);
        assert!(a_booked);
    }
}
