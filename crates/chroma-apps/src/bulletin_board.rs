//! Bulletin board (§4 i): posting and retrieving via top-level
//! independent actions.
//!
//! "While it is desirable for bulletin board operations to be structured
//! as atomic actions, if these actions are nested within the actions of
//! an application, then bulletin information can remain inaccessible for
//! long times. Top-level independent actions give the desired
//! functionality. Of course, if the invoking action aborts it may well
//! be necessary to invoke a compensating top-level action."

use chroma_core::{ActionError, ActionScope, Runtime};
use chroma_structures::{independent_async, independent_sync, IndependentHandle};
use serde::{Deserialize, Serialize};

/// One bulletin-board entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    /// Who posted.
    pub author: String,
    /// The message.
    pub text: String,
    /// Board-assigned sequence number.
    pub seq: u64,
    /// `true` if a compensating post retracted this one.
    pub retracted: bool,
}

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct BoardState {
    posts: Vec<Post>,
    next_seq: u64,
}

/// A persistent bulletin board whose operations are atomic actions.
///
/// Posting from inside an application action uses an independent action,
/// so the post is visible (and permanent) immediately, regardless of the
/// application's eventual fate; [`BulletinBoard::retract`] is the
/// compensating action for invokers that abort.
///
/// # Examples
///
/// ```
/// use chroma_core::{ActionError, Runtime};
/// use chroma_apps::BulletinBoard;
///
/// # fn main() -> Result<(), ActionError> {
/// let rt = Runtime::builder().build();
/// let board = BulletinBoard::create(&rt)?;
/// let result: Result<(), ActionError> = rt.atomic(|a| {
///     board.post_from(a, "ada", "build finished")?;
///     Err(ActionError::failed("application aborted"))
/// });
/// assert!(result.is_err());
/// assert_eq!(board.posts()?.len(), 1); // the post survived
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct BulletinBoard {
    rt: Runtime,
    board: chroma_core::ObjectId,
}

impl BulletinBoard {
    /// Creates an empty board.
    ///
    /// # Errors
    ///
    /// Codec failures (never occur for the empty state).
    pub fn create(rt: &Runtime) -> Result<Self, ActionError> {
        let board = rt.create_object(&BoardState::default())?;
        Ok(BulletinBoard {
            rt: rt.clone(),
            board,
        })
    }

    /// Posts from inside an application action as a *synchronous
    /// independent action*: the post is permanent when this returns,
    /// whatever later happens to the invoker.
    ///
    /// # Errors
    ///
    /// Lock or codec failures from the board update.
    pub fn post_from(
        &self,
        scope: &mut ActionScope<'_>,
        author: &str,
        text: &str,
    ) -> Result<u64, ActionError> {
        let board = self.board;
        let (author, text) = (author.to_owned(), text.to_owned());
        independent_sync(scope, move |b| {
            b.modify(board, |state: &mut BoardState| {
                let seq = state.next_seq;
                state.next_seq += 1;
                state.posts.push(Post {
                    author,
                    text,
                    seq,
                    retracted: false,
                });
                seq
            })
        })
    }

    /// Posts as an *asynchronous independent action* (fig. 7b): returns
    /// immediately with a handle to the eventual sequence number.
    #[must_use]
    pub fn post_async(&self, author: &str, text: &str) -> IndependentHandle<u64> {
        let board = self.board;
        let (author, text) = (author.to_owned(), text.to_owned());
        independent_async(&self.rt, move |b| {
            b.modify(board, |state: &mut BoardState| {
                let seq = state.next_seq;
                state.next_seq += 1;
                state.posts.push(Post {
                    author,
                    text,
                    seq,
                    retracted: false,
                });
                seq
            })
        })
    }

    /// The compensating action: marks a post retracted (top-level
    /// independent, callable from anywhere — typically after the
    /// original invoker aborted).
    ///
    /// # Errors
    ///
    /// Lock or codec failures from the board update.
    pub fn retract(&self, seq: u64) -> Result<bool, ActionError> {
        let board = self.board;
        let colour = self.rt.universe().fresh()?;
        let result = self
            .rt
            .run_top(chroma_core::ColourSet::single(colour), colour, |scope| {
                scope.modify(board, |state: &mut BoardState| {
                    match state.posts.iter_mut().find(|p| p.seq == seq) {
                        Some(post) => {
                            post.retracted = true;
                            true
                        }
                        None => false,
                    }
                })
            });
        self.rt.universe().release(colour);
        result
    }

    /// Prunes the board to its most recent `keep_last` posts, dropping
    /// the oldest ones (retracted or not). Returns how many were
    /// removed. Sequence numbering is unaffected, so later retracts of
    /// surviving posts still work.
    ///
    /// # Errors
    ///
    /// Lock or codec failures from the board update.
    pub fn prune(&self, keep_last: usize) -> Result<usize, ActionError> {
        let board = self.board;
        self.rt.atomic(|a| {
            a.modify(board, |state: &mut BoardState| {
                let excess = state.posts.len().saturating_sub(keep_last);
                state.posts.drain(..excess);
                excess
            })
        })
    }

    /// The number of posts currently on the board.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn post_count(&self) -> Result<usize, ActionError> {
        let board = self.board;
        self.rt
            .atomic(|a| a.read::<BoardState>(board))
            .map(|s| s.posts.len())
    }

    /// Reads all posts (as a top-level atomic action).
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn posts(&self) -> Result<Vec<Post>, ActionError> {
        let board = self.board;
        self.rt
            .atomic(|a| a.read::<BoardState>(board))
            .map(|s| s.posts)
    }

    /// Reads posts from within an existing action.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn posts_from(&self, scope: &ActionScope<'_>) -> Result<Vec<Post>, ActionError> {
        scope.read::<BoardState>(self.board).map(|s| s.posts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posts_survive_invoker_abort() {
        let rt = Runtime::builder().build();
        let board = BulletinBoard::create(&rt).unwrap();
        let result: Result<(), ActionError> = rt.atomic(|a| {
            board.post_from(a, "ada", "hello")?;
            Err(ActionError::failed("invoker aborts"))
        });
        assert!(result.is_err());
        let posts = board.posts().unwrap();
        assert_eq!(posts.len(), 1);
        assert_eq!(posts[0].text, "hello");
    }

    #[test]
    fn async_posts_are_permanent() {
        let rt = Runtime::builder().build();
        let board = BulletinBoard::create(&rt).unwrap();
        let h1 = board.post_async("a", "one");
        let h2 = board.post_async("b", "two");
        h1.join().unwrap();
        h2.join().unwrap();
        let posts = board.posts().unwrap();
        assert_eq!(posts.len(), 2);
        // Sequence numbers are unique even with concurrent posters.
        assert_ne!(posts[0].seq, posts[1].seq);
    }

    #[test]
    fn retraction_compensates_after_abort() {
        let rt = Runtime::builder().build();
        let board = BulletinBoard::create(&rt).unwrap();
        let mut posted_seq = None;
        let result: Result<(), ActionError> = rt.atomic(|a| {
            posted_seq = Some(board.post_from(a, "ada", "meeting at 10")?);
            Err(ActionError::failed("plans changed"))
        });
        assert!(result.is_err());
        assert!(board.retract(posted_seq.unwrap()).unwrap());
        let posts = board.posts().unwrap();
        assert!(posts[0].retracted);
    }

    #[test]
    fn retract_unknown_seq_reports_false() {
        let rt = Runtime::builder().build();
        let board = BulletinBoard::create(&rt).unwrap();
        assert!(!board.retract(99).unwrap());
    }

    #[test]
    fn posts_visible_immediately_not_blocked_by_invoker() {
        // The §4(i) motivation: a nested post would stay locked until
        // the application ends; an independent post is readable at once.
        let rt = Runtime::builder().build();
        let board = BulletinBoard::create(&rt).unwrap();
        rt.atomic(|a| {
            board.post_from(a, "ada", "early news")?;
            // Another client reads the board while the invoker is still
            // running.
            let posts = board.posts()?;
            assert_eq!(posts.len(), 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn prune_keeps_newest_posts() {
        let rt = Runtime::builder().build();
        let board = BulletinBoard::create(&rt).unwrap();
        for i in 0..5 {
            board.post_async("a", &format!("post {i}")).join().unwrap();
        }
        assert_eq!(board.post_count().unwrap(), 5);
        assert_eq!(board.prune(2).unwrap(), 3);
        let posts = board.posts().unwrap();
        assert_eq!(posts.len(), 2);
        // The newest posts survive, and their seqs still resolve.
        assert_eq!(posts[0].text, "post 3");
        assert_eq!(posts[1].text, "post 4");
        assert!(board.retract(posts[1].seq).unwrap());
        // Pruning below the floor is a no-op.
        assert_eq!(board.prune(10).unwrap(), 0);
        assert_eq!(board.post_count().unwrap(), 2);
    }

    #[test]
    fn posts_survive_crash() {
        let rt = Runtime::builder().build();
        let board = BulletinBoard::create(&rt).unwrap();
        board.post_async("a", "durable").join().unwrap();
        rt.crash_and_recover();
        assert_eq!(board.posts().unwrap().len(), 1);
    }
}
