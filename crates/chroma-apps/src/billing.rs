//! Billing and accounting of resource usage (§4 iii).
//!
//! "If a service is accessed by an action and the user of the service is
//! to be charged, then the charging information should not be recovered
//! if the action aborts. Top-level independent actions again provide
//! the required functionality."

use chroma_core::{ActionError, ActionScope, ObjectId, Runtime};
use chroma_structures::independent_sync;
use serde::{Deserialize, Serialize};

/// One charge on the ledger.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Charge {
    /// The account charged.
    pub account: String,
    /// What was used.
    pub resource: String,
    /// Cost in abstract units.
    pub amount: u64,
}

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct LedgerState {
    charges: Vec<Charge>,
    total: u64,
}

/// A persistent usage ledger whose charges survive client aborts.
///
/// # Examples
///
/// ```
/// use chroma_core::{ActionError, Runtime};
/// use chroma_apps::Ledger;
///
/// # fn main() -> Result<(), ActionError> {
/// let rt = Runtime::builder().build();
/// let ledger = Ledger::create(&rt)?;
/// let result: Result<(), ActionError> = rt.atomic(|a| {
///     ledger.charge_from(a, "ada", "cpu", 5)?;
///     Err(ActionError::failed("client work failed"))
/// });
/// assert!(result.is_err());
/// assert_eq!(ledger.total()?, 5); // the charge stands
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Ledger {
    rt: Runtime,
    ledger: ObjectId,
}

impl Ledger {
    /// Creates an empty ledger.
    ///
    /// # Errors
    ///
    /// Codec failures (never occur for the empty state).
    pub fn create(rt: &Runtime) -> Result<Self, ActionError> {
        let ledger = rt.create_object(&LedgerState::default())?;
        Ok(Ledger {
            rt: rt.clone(),
            ledger,
        })
    }

    /// Records a charge from inside a client action, as a synchronous
    /// independent action: the charge is permanent immediately and is
    /// *not* recovered if the client aborts.
    ///
    /// # Errors
    ///
    /// Lock or codec failures from the ledger update.
    pub fn charge_from(
        &self,
        scope: &mut ActionScope<'_>,
        account: &str,
        resource: &str,
        amount: u64,
    ) -> Result<(), ActionError> {
        let ledger = self.ledger;
        let charge = Charge {
            account: account.to_owned(),
            resource: resource.to_owned(),
            amount,
        };
        independent_sync(scope, move |b| {
            b.modify(ledger, |state: &mut LedgerState| {
                state.total += charge.amount;
                state.charges.push(charge);
            })
        })
    }

    /// Runs `service` inside the client's action, charging `cost`
    /// *whether or not the service body succeeds* — metering covers
    /// resource consumption, not outcomes.
    ///
    /// # Errors
    ///
    /// The service body's error (the charge stands either way), or
    /// ledger failures.
    pub fn metered<R>(
        &self,
        scope: &mut ActionScope<'_>,
        account: &str,
        resource: &str,
        cost: u64,
        service: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        self.charge_from(scope, account, resource, cost)?;
        scope.nested(service)
    }

    /// Returns the sum of all charges.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn total(&self) -> Result<u64, ActionError> {
        let ledger = self.ledger;
        self.rt
            .atomic(|a| a.read::<LedgerState>(ledger))
            .map(|s| s.total)
    }

    /// Returns all recorded charges.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn charges(&self) -> Result<Vec<Charge>, ActionError> {
        let ledger = self.ledger;
        self.rt
            .atomic(|a| a.read::<LedgerState>(ledger))
            .map(|s| s.charges)
    }

    /// Settles the ledger: folds the itemised charges into the running
    /// total (which they already contribute to) and clears the list,
    /// keeping ledger state bounded under sustained charging. Returns
    /// the number of charges folded.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn settle(&self) -> Result<usize, ActionError> {
        let ledger = self.ledger;
        self.rt.atomic(|a| {
            a.modify(ledger, |state: &mut LedgerState| {
                let folded = state.charges.len();
                state.charges.clear();
                folded
            })
        })
    }

    /// Returns the total charged to one account.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn account_total(&self, account: &str) -> Result<u64, ActionError> {
        Ok(self
            .charges()?
            .iter()
            .filter(|c| c.account == account)
            .map(|c| c.amount)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_survive_client_abort() {
        let rt = Runtime::builder().build();
        let ledger = Ledger::create(&rt).unwrap();
        let result: Result<(), ActionError> = rt.atomic(|a| {
            ledger.charge_from(a, "ada", "compile", 3)?;
            Err(ActionError::failed("client aborts"))
        });
        assert!(result.is_err());
        assert_eq!(ledger.total().unwrap(), 3);
    }

    #[test]
    fn metered_service_charges_even_on_failure() {
        let rt = Runtime::builder().build();
        let ledger = Ledger::create(&rt).unwrap();
        let work = rt.create_object(&0u32).unwrap();
        let result: Result<(), ActionError> = rt.atomic(|a| {
            ledger.metered(a, "bob", "render", 7, |s| {
                s.write(work, &99u32)?;
                Err::<(), _>(ActionError::failed("render crashed"))
            })
        });
        assert!(result.is_err());
        assert_eq!(ledger.total().unwrap(), 7); // charged
        assert_eq!(rt.read_committed::<u32>(work).unwrap(), 0); // work undone
    }

    #[test]
    fn metered_service_success_keeps_both() {
        let rt = Runtime::builder().build();
        let ledger = Ledger::create(&rt).unwrap();
        let work = rt.create_object(&0u32).unwrap();
        rt.atomic(|a| ledger.metered(a, "bob", "render", 7, |s| s.write(work, &42u32)))
            .unwrap();
        assert_eq!(ledger.total().unwrap(), 7);
        assert_eq!(rt.read_committed::<u32>(work).unwrap(), 42);
    }

    #[test]
    fn per_account_totals() {
        let rt = Runtime::builder().build();
        let ledger = Ledger::create(&rt).unwrap();
        rt.atomic(|a| {
            ledger.charge_from(a, "ada", "cpu", 5)?;
            ledger.charge_from(a, "bob", "cpu", 2)?;
            ledger.charge_from(a, "ada", "disk", 1)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(ledger.account_total("ada").unwrap(), 6);
        assert_eq!(ledger.account_total("bob").unwrap(), 2);
        assert_eq!(ledger.charges().unwrap().len(), 3);
    }

    #[test]
    fn settle_keeps_total_and_clears_items() {
        let rt = Runtime::builder().build();
        let ledger = Ledger::create(&rt).unwrap();
        rt.atomic(|a| {
            ledger.charge_from(a, "ada", "cpu", 5)?;
            ledger.charge_from(a, "bob", "cpu", 2)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(ledger.settle().unwrap(), 2);
        assert_eq!(ledger.total().unwrap(), 7); // total survives
        assert!(ledger.charges().unwrap().is_empty());
        assert_eq!(ledger.settle().unwrap(), 0); // idempotent when empty
                                                 // Post-settlement charges accumulate afresh.
        rt.atomic(|a| ledger.charge_from(a, "ada", "disk", 1))
            .unwrap();
        assert_eq!(ledger.total().unwrap(), 8);
        assert_eq!(ledger.charges().unwrap().len(), 1);
    }

    #[test]
    fn concurrent_charges_serialize() {
        let rt = Runtime::builder().build();
        let ledger = Ledger::create(&rt).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let rt = rt.clone();
                let ledger = ledger.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        rt.atomic(|a| ledger.charge_from(a, "x", "op", 1)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ledger.total().unwrap(), 40);
    }
}
