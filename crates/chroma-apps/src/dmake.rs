//! Fault-tolerant distributed make (§4 iv, fig. 8).
//!
//! The paper's requirements: (i) exploit the concurrency available —
//! prerequisites are made consistent in parallel; (ii) proper
//! concurrency control — while make runs, the files it depends on
//! cannot be changed by other programs; and (iii) *fault-tolerance* —
//! "if make fails, any files that have been made consistent should
//! remain so."
//!
//! Requirement (iii) rules out one big atomic action; requirement (ii)
//! rules out independent top-level actions per target. The fit is a
//! **serializing action**: each target's rebuild is a constituent step
//! (top-level for permanence — a finished compile survives anything),
//! while the wrapper retains every file lock until the whole make ends
//! (no interleaving mutators).
//!
//! Compilation is simulated: a "command" execution derives new content
//! from the prerequisite contents and stamps it with a logical clock —
//! which is exactly the part of the experiment that matters (the action
//! structure), per the substitution note in `DESIGN.md`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use chroma_core::{ActionError, ObjectId, Runtime};
use chroma_structures::{SerialStep, SerializingAction};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The persistent state of one file: a change-stamp and its content.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileState {
    /// Logical timestamp of the last change (0 = never built).
    pub stamp: u64,
    /// Simulated file content.
    pub content: String,
}

/// One makefile rule: a target, its prerequisites, and the command that
/// re-establishes consistency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The file the rule builds.
    pub target: String,
    /// Files the target depends on.
    pub prerequisites: Vec<String>,
    /// The (simulated) command.
    pub command: String,
}

/// A parsed makefile: the dependency graph driving distributed make.
///
/// # Examples
///
/// The paper's example makefile parses directly:
///
/// ```
/// use chroma_apps::Makefile;
///
/// let mk = Makefile::parse(
///     "Test: Test0.o Test1.o\n\
///      \tcc -o Test Test0.o Test1.o\n\
///      Test0.o: Test0.h Test1.h Test0.c\n\
///      \tcc -c Test0.c\n\
///      Test1.o: Test1.h Test1.c\n\
///      \tcc -c Test1.c\n",
/// ).unwrap();
/// assert_eq!(mk.rule("Test").unwrap().prerequisites.len(), 2);
/// assert!(mk.rule("Test0.c").is_none()); // a source, not a target
/// ```
#[derive(Clone, Debug, Default)]
pub struct Makefile {
    rules: HashMap<String, Rule>,
}

impl Makefile {
    /// Parses makefile text: `target: prereq...` lines followed by
    /// tab-indented command lines.
    ///
    /// # Errors
    ///
    /// [`ActionError::Failed`] on malformed lines, duplicate targets,
    /// or dependency cycles.
    pub fn parse(text: &str) -> Result<Self, ActionError> {
        let mut rules: HashMap<String, Rule> = HashMap::new();
        let mut current: Option<String> = None;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            if line.starts_with('\t') || line.starts_with("    ") {
                let Some(target) = &current else {
                    return Err(ActionError::failed(format!(
                        "line {}: command without a rule",
                        lineno + 1
                    )));
                };
                let rule = rules.get_mut(target).expect("rule exists");
                if !rule.command.is_empty() {
                    rule.command.push_str(" && ");
                }
                rule.command.push_str(line.trim());
            } else {
                let Some((target, prereqs)) = line.split_once(':') else {
                    return Err(ActionError::failed(format!(
                        "line {}: expected 'target: prerequisites'",
                        lineno + 1
                    )));
                };
                let target = target.trim().to_owned();
                if rules.contains_key(&target) {
                    return Err(ActionError::failed(format!(
                        "duplicate rule for target {target}"
                    )));
                }
                let prerequisites: Vec<String> =
                    prereqs.split_whitespace().map(str::to_owned).collect();
                rules.insert(
                    target.clone(),
                    Rule {
                        target: target.clone(),
                        prerequisites,
                        command: String::new(),
                    },
                );
                current = Some(target);
            }
        }
        let makefile = Makefile { rules };
        makefile.check_acyclic()?;
        Ok(makefile)
    }

    /// Returns the rule for `target`, if it is a built (non-source)
    /// file.
    #[must_use]
    pub fn rule(&self, target: &str) -> Option<&Rule> {
        self.rules.get(target)
    }

    /// Returns all rule targets, sorted.
    #[must_use]
    pub fn targets(&self) -> Vec<String> {
        let mut targets: Vec<String> = self.rules.keys().cloned().collect();
        targets.sort();
        targets
    }

    /// Returns every file named anywhere (targets and sources), sorted.
    #[must_use]
    pub fn files(&self) -> Vec<String> {
        let mut files: HashSet<String> = HashSet::new();
        for rule in self.rules.values() {
            files.insert(rule.target.clone());
            files.extend(rule.prerequisites.iter().cloned());
        }
        let mut files: Vec<String> = files.into_iter().collect();
        files.sort();
        files
    }

    fn check_acyclic(&self) -> Result<(), ActionError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Visiting,
            Done,
        }
        fn visit(
            rules: &HashMap<String, Rule>,
            name: &str,
            marks: &mut HashMap<String, Mark>,
        ) -> Result<(), ActionError> {
            match marks.get(name) {
                Some(Mark::Done) => return Ok(()),
                Some(Mark::Visiting) => {
                    return Err(ActionError::failed(format!(
                        "dependency cycle through {name}"
                    )))
                }
                None => {}
            }
            if let Some(rule) = rules.get(name) {
                marks.insert(name.to_owned(), Mark::Visiting);
                for p in &rule.prerequisites {
                    visit(rules, p, marks)?;
                }
            }
            marks.insert(name.to_owned(), Mark::Done);
            Ok(())
        }
        let mut marks = HashMap::new();
        for target in self.rules.keys() {
            visit(&self.rules, target, &mut marks)?;
        }
        Ok(())
    }
}

/// What one `make` run did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MakeReport {
    /// Targets whose commands were executed, in completion order.
    pub rebuilt: Vec<String>,
    /// Targets found already consistent.
    pub up_to_date: Vec<String>,
}

/// The fault-tolerant distributed make engine.
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
/// use chroma_apps::{DistMake, Makefile};
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let mk = Makefile::parse("app: lib.c\n\tcc -o app lib.c\n")?;
/// let make = DistMake::new(&rt, mk)?;
/// make.write_source("lib.c", "int main(){}")?;
/// let report = make.make("app")?;
/// assert_eq!(report.rebuilt, vec!["app".to_owned()]);
/// // A second make finds everything consistent.
/// assert!(make.make("app")?.rebuilt.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DistMake {
    rt: Runtime,
    makefile: Makefile,
    files: HashMap<String, ObjectId>,
    clock: AtomicU64,
    commands_run: AtomicU64,
    /// Targets whose command will fail (fault injection for tests and
    /// experiments).
    fail_commands: Mutex<HashSet<String>>,
    /// Simulated duration of each command execution.
    command_delay: std::time::Duration,
}

impl DistMake {
    /// Creates the engine, registering a persistent file object (stamp
    /// 0, empty) for every file the makefile mentions.
    ///
    /// # Errors
    ///
    /// Codec failures creating the file objects.
    pub fn new(rt: &Runtime, makefile: Makefile) -> Result<Self, ActionError> {
        let mut files = HashMap::new();
        for name in makefile.files() {
            let object = rt.create_object(&FileState {
                stamp: 0,
                content: String::new(),
            })?;
            files.insert(name, object);
        }
        Ok(DistMake {
            rt: rt.clone(),
            makefile,
            files,
            clock: AtomicU64::new(1),
            commands_run: AtomicU64::new(0),
            fail_commands: Mutex::new(HashSet::new()),
            command_delay: std::time::Duration::ZERO,
        })
    }

    /// Sets a simulated duration for every command execution (stands in
    /// for real compiler work when measuring the concurrency gain of
    /// fig. 8).
    pub fn set_command_delay(&mut self, delay: std::time::Duration) {
        self.command_delay = delay;
    }

    /// Writes a source file's content (bumping its stamp), as a
    /// top-level atomic action — modelling an editor save.
    ///
    /// # Errors
    ///
    /// [`ActionError::NoSuchObject`] for unknown files; lock failures if
    /// a make currently fences the file.
    pub fn write_source(&self, name: &str, content: &str) -> Result<(), ActionError> {
        let object = self.object(name)?;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let state = FileState {
            stamp,
            content: content.to_owned(),
        };
        self.rt.atomic(move |a| a.write(object, &state))
    }

    /// Bumps a file's stamp without changing content (like `touch`).
    ///
    /// # Errors
    ///
    /// Same as [`DistMake::write_source`].
    pub fn touch(&self, name: &str) -> Result<(), ActionError> {
        let object = self.object(name)?;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        self.rt
            .atomic(move |a| a.modify(object, |f: &mut FileState| f.stamp = stamp))
    }

    /// Reads a file's committed state.
    ///
    /// # Errors
    ///
    /// [`ActionError::NoSuchObject`] for unknown files.
    pub fn file_state(&self, name: &str) -> Result<FileState, ActionError> {
        self.rt.read_committed(self.object(name)?)
    }

    /// Makes a target fail on its next command execution (fault
    /// injection).
    pub fn inject_failure(&self, target: &str) {
        self.fail_commands.lock().insert(target.to_owned());
    }

    /// Clears an injected failure.
    pub fn clear_failure(&self, target: &str) {
        self.fail_commands.lock().remove(target);
    }

    /// Returns how many commands have been executed over this engine's
    /// lifetime (the "work performed" metric of experiment E08).
    #[must_use]
    pub fn commands_run(&self) -> u64 {
        self.commands_run.load(Ordering::Relaxed)
    }

    /// Runs make for `target` under a serializing action (fig. 8).
    ///
    /// Prerequisite subtrees build concurrently; each rebuild is one
    /// constituent step. On failure, every already-rebuilt file stays
    /// consistent (its step committed) — re-running make after fixing
    /// the problem redoes only the missing work.
    ///
    /// # Errors
    ///
    /// The first command failure or lock/codec failure encountered; the
    /// serializing wrapper is abandoned (completed steps survive).
    pub fn make(&self, target: &str) -> Result<MakeReport, ActionError> {
        self.object(target)?; // validate early
        let sa = SerializingAction::begin(&self.rt)?;
        let report = Mutex::new(MakeReport::default());
        let result = self.build(&sa, target, &report);
        match result {
            Ok(_) => {
                sa.end()?;
                Ok(report.into_inner())
            }
            Err(error) => {
                sa.abandon();
                Err(error)
            }
        }
    }

    /// The baseline the paper argues against: the whole make as **one
    /// atomic action**. A failure anywhere undoes every compile already
    /// performed (contrast [`DistMake::make`], where completed steps
    /// survive). Prerequisites still build concurrently as nested
    /// actions.
    ///
    /// # Errors
    ///
    /// The first command failure or lock/codec failure; on error, *all*
    /// work in this run is rolled back.
    pub fn make_monolithic(&self, target: &str) -> Result<MakeReport, ActionError> {
        self.object(target)?;
        let report = Mutex::new(MakeReport::default());
        let colour = self.rt.universe().fresh()?;
        let result = self
            .rt
            .run_top(chroma_base::ColourSet::single(colour), colour, |scope| {
                self.build_monolithic(scope, colour, target, &report)
            });
        self.rt.universe().release(colour);
        result.map(|_| report.into_inner())
    }

    fn build_monolithic(
        &self,
        scope: &chroma_core::ActionScope<'_>,
        colour: chroma_base::Colour,
        name: &str,
        report: &Mutex<MakeReport>,
    ) -> Result<u64, ActionError> {
        let object = self.object(name)?;
        let Some(rule) = self.makefile.rule(name) else {
            return Ok(scope.read_in::<FileState>(colour, object)?.stamp);
        };
        let newest_prereq = std::thread::scope(|s| {
            let handles: Vec<_> = rule
                .prerequisites
                .iter()
                .map(|p| s.spawn(move || self.build_monolithic(scope, colour, p, report)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| ActionError::failed("builder panicked"))?
                })
                .collect::<Result<Vec<u64>, ActionError>>()
        })?
        .into_iter()
        .max()
        .unwrap_or(0);
        let current: FileState = scope.read_in(colour, object)?;
        if current.stamp != 0 && current.stamp >= newest_prereq {
            report.lock().up_to_date.push(name.to_owned());
            return Ok(current.stamp);
        }
        if self.fail_commands.lock().contains(&rule.target) {
            return Err(ActionError::failed(format!(
                "command failed for target {}",
                rule.target
            )));
        }
        if !self.command_delay.is_zero() {
            std::thread::sleep(self.command_delay);
        }
        let mut derived = format!("[{}]", rule.command);
        for p in &rule.prerequisites {
            let state: FileState = scope.read_in(colour, self.object(p)?)?;
            derived.push_str(&format!(" {}@{}", p, state.stamp));
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        scope.write_in(
            colour,
            object,
            &FileState {
                stamp,
                content: derived,
            },
        )?;
        self.commands_run.fetch_add(1, Ordering::Relaxed);
        report.lock().rebuilt.push(rule.target.clone());
        Ok(stamp)
    }

    /// Recursively ensures `name` is consistent; returns its stamp.
    fn build(
        &self,
        sa: &SerializingAction,
        name: &str,
        report: &Mutex<MakeReport>,
    ) -> Result<u64, ActionError> {
        let object = self.object(name)?;
        let Some(rule) = self.makefile.rule(name) else {
            // A source file: phase (ii) — obtain (and fence) its stamp.
            return sa.step(|step| Ok(step.read::<FileState>(object)?.stamp));
        };
        // Phase (i): make prerequisites consistent, concurrently.
        let prereq_stamps: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = rule
                .prerequisites
                .iter()
                .map(|p| scope.spawn(move || self.build(sa, p, report)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| ActionError::failed("builder panicked"))?
                })
                .collect::<Result<Vec<u64>, ActionError>>()
        })?;
        let newest_prereq = prereq_stamps.into_iter().max().unwrap_or(0);
        // Phases (ii)–(iv) as one constituent step: compare stamps,
        // execute the command if needed.
        sa.step(|step| {
            let current: FileState = step.read(object)?;
            if current.stamp != 0 && current.stamp >= newest_prereq {
                report.lock().up_to_date.push(name.to_owned());
                return Ok(current.stamp);
            }
            self.execute_command(step, rule, object, report)
        })
    }

    /// Simulated command execution: derives the target's content from
    /// its prerequisites and stamps it now.
    fn execute_command(
        &self,
        step: &SerialStep<'_, '_>,
        rule: &Rule,
        object: ObjectId,
        report: &Mutex<MakeReport>,
    ) -> Result<u64, ActionError> {
        if self.fail_commands.lock().contains(&rule.target) {
            return Err(ActionError::failed(format!(
                "command failed for target {}",
                rule.target
            )));
        }
        if !self.command_delay.is_zero() {
            std::thread::sleep(self.command_delay);
        }
        let mut derived = format!("[{}]", rule.command);
        for p in &rule.prerequisites {
            let state: FileState = step.read(self.object(p)?)?;
            derived.push_str(&format!(" {}@{}", p, state.stamp));
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        step.write(
            object,
            &FileState {
                stamp,
                content: derived,
            },
        )?;
        self.commands_run.fetch_add(1, Ordering::Relaxed);
        report.lock().rebuilt.push(rule.target.clone());
        Ok(stamp)
    }

    fn object(&self, name: &str) -> Result<ObjectId, ActionError> {
        self.files
            .get(name)
            .copied()
            .ok_or_else(|| ActionError::failed(format!("unknown file {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_MAKEFILE: &str = "Test: Test0.o Test1.o\n\
                                  \tcc -o Test Test0.o Test1.o\n\
                                  Test0.o: Test0.h Test1.h Test0.c\n\
                                  \tcc -c Test0.c\n\
                                  Test1.o: Test1.h Test1.c\n\
                                  \tcc -c Test1.c\n";

    fn engine() -> (Runtime, DistMake) {
        let rt = Runtime::builder().build();
        let mk = Makefile::parse(PAPER_MAKEFILE).unwrap();
        let make = DistMake::new(&rt, mk).unwrap();
        for src in ["Test0.h", "Test1.h", "Test0.c", "Test1.c"] {
            make.write_source(src, &format!("// {src}")).unwrap();
        }
        (rt, make)
    }

    #[test]
    fn parses_the_papers_makefile() {
        let mk = Makefile::parse(PAPER_MAKEFILE).unwrap();
        assert_eq!(mk.targets(), vec!["Test", "Test0.o", "Test1.o"]);
        assert_eq!(
            mk.rule("Test0.o").unwrap().prerequisites,
            vec!["Test0.h", "Test1.h", "Test0.c"]
        );
        assert_eq!(
            mk.rule("Test").unwrap().command,
            "cc -o Test Test0.o Test1.o"
        );
        assert_eq!(mk.files().len(), 7);
    }

    #[test]
    fn rejects_cycles_and_garbage() {
        assert!(Makefile::parse("a: b\n\tx\nb: a\n\ty\n").is_err());
        assert!(Makefile::parse("no colon here\n").is_err());
        assert!(Makefile::parse("\tcommand without rule\n").is_err());
        assert!(Makefile::parse("a: b\n\tx\na: c\n\ty\n").is_err());
    }

    #[test]
    fn full_build_then_incremental_noop() {
        let (_rt, make) = engine();
        let report = make.make("Test").unwrap();
        assert_eq!(report.rebuilt.len(), 3);
        assert_eq!(*report.rebuilt.last().unwrap(), "Test");
        // Second make: nothing to do.
        let report = make.make("Test").unwrap();
        assert!(report.rebuilt.is_empty());
        assert_eq!(report.up_to_date.len(), 3);
        assert_eq!(make.commands_run(), 3);
    }

    #[test]
    fn touching_a_header_rebuilds_dependents_only() {
        let (_rt, make) = engine();
        make.make("Test").unwrap();
        make.touch("Test1.h").unwrap();
        let report = make.make("Test").unwrap();
        // Test1.h is a prerequisite of both .o files -> everything
        // rebuilds; touching Test1.c instead rebuilds only one chain.
        assert_eq!(report.rebuilt.len(), 3);
        make.touch("Test1.c").unwrap();
        let report = make.make("Test").unwrap();
        let mut rebuilt = report.rebuilt.clone();
        rebuilt.sort();
        assert_eq!(rebuilt, vec!["Test", "Test1.o"]);
    }

    #[test]
    fn failed_command_preserves_completed_work() {
        let (_rt, make) = engine();
        make.inject_failure("Test0.o");
        let err = make.make("Test").unwrap_err();
        assert!(matches!(err, ActionError::Failed(_)));
        // Requirement (iii): Test1.o may have completed; whatever
        // completed remains consistent. Fix the problem and re-make:
        make.clear_failure("Test0.o");
        let before = make.commands_run();
        let report = make.make("Test").unwrap();
        assert!(report.rebuilt.contains(&"Test0.o".to_owned()));
        assert!(report.rebuilt.contains(&"Test".to_owned()));
        // Total commands across both makes never exceeds a from-scratch
        // build plus the retried target's chain.
        let after = make.commands_run();
        assert!(after - before <= 3);
        assert!(after <= 4, "work was redone: {after} commands total");
    }

    #[test]
    fn make_fences_files_against_concurrent_edits() {
        let (rt, make) = engine();
        make.make("Test").unwrap();
        make.touch("Test0.c").unwrap();
        // Start a make that will hold fences; run an editor save in
        // parallel: it must not interleave with the make's view.
        let rt2 = rt.clone();
        let make2 = std::sync::Arc::new(make);
        let make3 = std::sync::Arc::clone(&make2);
        let builder = std::thread::spawn(move || make3.make("Test").unwrap());
        // This write either happens before the make fences Test0.c or
        // after the whole make ends; the final state is consistent
        // either way (no torn view).
        let _ = rt2; // the editor uses the engine API:
        let edit = std::thread::spawn(move || {
            let _ = make2.write_source("Test0.c", "edited");
        });
        builder.join().unwrap();
        edit.join().unwrap();
    }

    #[test]
    fn crash_during_make_preserves_committed_steps() {
        let (rt, make) = engine();
        make.inject_failure("Test");
        // The two .o steps commit, then the Test command fails; model a
        // crash at that point.
        let _ = make.make("Test");
        rt.crash_and_recover();
        let o0 = make.file_state("Test0.o").unwrap();
        let o1 = make.file_state("Test1.o").unwrap();
        assert!(o0.stamp > 0, "Test0.o lost its compile");
        assert!(o1.stamp > 0, "Test1.o lost its compile");
        // The final link never happened.
        assert_eq!(make.file_state("Test").unwrap().stamp, 0);
        // Recovery: re-make performs only the link.
        make.clear_failure("Test");
        let report = make.make("Test").unwrap();
        assert_eq!(report.rebuilt, vec!["Test".to_owned()]);
    }
}
