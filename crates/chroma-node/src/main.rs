//! `chroma-node` — host one cluster member as a real OS process.
//!
//! The simulator proves the protocols; this binary proves the *code*:
//! the same [`Node`] state machines, dispatched through the same
//! [`dispatch_with`] path, run here over [`TcpTransport`] instead of
//! the discrete-event scheduler — as separately killable processes.
//!
//! ```text
//! chroma-node worker      --id 2 --listen 127.0.0.1:7102 \
//!     --peer 1=127.0.0.1:7101 --peer 3=127.0.0.1:7103 \
//!     --data /tmp/n2 --trace /tmp/n2.jsonl
//! chroma-node coordinator --id 1 --listen 127.0.0.1:7101 \
//!     --peer 2=127.0.0.1:7102 --peer 3=127.0.0.1:7103 \
//!     --data /tmp/n1 --trace /tmp/n1.jsonl --txns 6 --seed 42
//! ```
//!
//! A **worker** is a 2PC participant: it answers prepares, votes,
//! installs decisions — forever, until killed. A **coordinator** drives
//! `--txns` transactions (one object each, every peer a participant),
//! reporting each outcome on stdout as `txn N commit|abort obj O`, then
//! lingers `--linger-ms` to answer straggler decision queries.
//!
//! Three things make `kill -9` survivable:
//!
//! * every dispatch runs [`Node::persist_durable`] as its durability
//!   barrier — stable state reaches the [`DiskBackend`]'s intentions
//!   log *before* any resulting message leaves;
//! * on restart the node rebuilds from that mirror
//!   (`Node::builder().backend(..)`) and [`Node::recover`] re-derives
//!   its protocol obligations;
//! * the process appends to its per-node JSONL trace with its Lamport
//!   clock restored from the trace's own tail, so a merged cluster
//!   trace (`chroma-trace merge`) still audits clean across the crash.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::Write as IoWrite;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chroma_base::{NodeId, ObjectId};
use chroma_core::{DiskBackend, Runtime};
use chroma_dist::{
    dispatch_with, Node, TcpConfig, TcpTransport, Transport, TransportEvent, TxnId, Write,
};
use chroma_obs::{AppendJsonlSink, EventBus, EventKind, Obs, Observable};
use chroma_store::StoreBytes;

/// Lowest object id the coordinator writes through 2PC; ids below
/// belong to each process's co-hosted [`Runtime`], ids at or above
/// `1 << 62` to the node mirror itself.
const APP_OBJECT_BASE: u64 = 1_000;

/// How long a coordinator drives one transaction before giving up and
/// reporting whatever the durable log says.
const TXN_DEADLINE: Duration = Duration::from_secs(30);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Opts::parse(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("chroma-node: {message}");
            eprintln!(
                "usage: chroma-node <worker|coordinator> --id <n> --listen <addr> \
                 [--peer <n>=<addr>]... --data <dir> --trace <file.jsonl> \
                 [--txns <n>] [--seed <n>] [--linger-ms <n>]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("chroma-node: {message}");
            ExitCode::FAILURE
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    Worker,
    Coordinator,
}

struct Opts {
    role: Role,
    id: NodeId,
    listen: String,
    peers: Vec<(NodeId, SocketAddr)>,
    data: PathBuf,
    trace: PathBuf,
    txns: u64,
    seed: u64,
    linger_ms: u64,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut it = args.iter();
        let role = match it.next().map(String::as_str) {
            Some("worker") => Role::Worker,
            Some("coordinator") => Role::Coordinator,
            Some(other) => return Err(format!("unknown role `{other}`")),
            None => return Err("missing role".into()),
        };
        let mut id = None;
        let mut listen = None;
        let mut peers = Vec::new();
        let mut data = None;
        let mut trace = None;
        let mut txns = 3;
        let mut seed = 42;
        let mut linger_ms = 2_000;
        while let Some(flag) = it.next() {
            let value = it
                .next()
                .ok_or_else(|| format!("flag {flag} needs a value"))?;
            match flag.as_str() {
                "--id" => {
                    let raw: u32 = value.parse().map_err(|_| format!("bad --id {value}"))?;
                    id = Some(NodeId::from_raw(raw));
                }
                "--listen" => listen = Some(value.clone()),
                "--peer" => {
                    let (raw, addr) = value
                        .split_once('=')
                        .ok_or_else(|| format!("bad --peer {value}, want <id>=<addr>"))?;
                    let raw: u32 = raw.parse().map_err(|_| format!("bad peer id {raw}"))?;
                    let addr: SocketAddr =
                        addr.parse().map_err(|_| format!("bad peer addr {addr}"))?;
                    peers.push((NodeId::from_raw(raw), addr));
                }
                "--data" => data = Some(PathBuf::from(value)),
                "--trace" => trace = Some(PathBuf::from(value)),
                "--txns" => txns = value.parse().map_err(|_| format!("bad --txns {value}"))?,
                "--seed" => seed = value.parse().map_err(|_| format!("bad --seed {value}"))?,
                "--linger-ms" => {
                    linger_ms = value
                        .parse()
                        .map_err(|_| format!("bad --linger-ms {value}"))?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(Opts {
            role,
            id: id.ok_or("missing --id")?,
            listen: listen.ok_or("missing --listen")?,
            peers,
            data: data.ok_or("missing --data")?,
            trace: trace.ok_or("missing --trace")?,
            txns,
            seed,
            linger_ms,
        })
    }
}

/// The object a transaction writes and the bytes it installs there —
/// shared vocabulary between the coordinator's stdout report and the
/// test that checks worker stores post-mortem.
fn txn_object(txn: u64) -> ObjectId {
    ObjectId::from_raw(APP_OBJECT_BASE + txn)
}

fn txn_value(seed: u64, txn: u64) -> Vec<u8> {
    format!("v{txn}-s{seed}").into_bytes()
}

fn run(opts: &Opts) -> Result<(), String> {
    // -- tracing: append to this process's own JSONL file, restoring
    // Lamport continuity from whatever an earlier incarnation left
    let bus = Arc::new(EventBus::new());
    let sink = AppendJsonlSink::open(&opts.trace)
        .map_err(|e| format!("cannot open trace {}: {e}", opts.trace.display()))?;
    let restarting = opts.trace.exists() && {
        let prior = chroma_obs::merge_trace_files(&[&opts.trace])
            .map_err(|e| format!("cannot scan prior trace: {e}"))?;
        let max_lc = prior.events.iter().map(|e| e.lc).max();
        if let Some(max_lc) = max_lc {
            bus.merge_clock(opts.id, max_lc);
        }
        max_lc.is_some()
    };
    bus.add_sink(Arc::new(sink));
    let obs = Obs::new(Arc::clone(&bus));

    // -- durability: one DiskStore shared by the node mirror and the
    // co-hosted Runtime (kept in disjoint object-id ranges). The store
    // stays un-observed: its WAL events belong to single-process
    // deployments, not this per-node protocol trace.
    let backend = Arc::new(
        DiskBackend::open(&opts.data)
            .map_err(|e| format!("cannot open data dir {}: {e}", opts.data.display()))?,
    );

    // -- transport: bind before building the node so identity and obs
    // flow from it. A restarted process re-binds its predecessor's
    // port, which can transiently fail while old connections drain —
    // retry briefly instead of dying.
    let bind_deadline = Instant::now() + Duration::from_secs(2);
    let mut tcp = loop {
        match TcpTransport::bind(opts.id, opts.listen.as_str(), TcpConfig::default()) {
            Ok(tcp) => break tcp,
            Err(e) if Instant::now() < bind_deadline => {
                eprintln!("chroma-node: bind {} failed ({e}), retrying", opts.listen);
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(format!("cannot bind {}: {e}", opts.listen)),
        }
    };
    tcp.install_obs(obs.clone());
    for &(peer, addr) in &opts.peers {
        tcp.add_peer(peer, addr);
    }

    // -- the protocol node, restored from its durable mirror
    let mut node = Node::builder()
        .transport(&tcp)
        .backend(backend.store())
        .build()
        .map_err(|e| format!("cannot restore node state: {e}"))?;
    if restarting {
        // the SIGKILL'd incarnation could not write these itself; record
        // the crash/recover pair so the merged trace tells the story
        let at_node = obs.at_node(opts.id);
        at_node.emit(EventKind::NodeCrash { node: opts.id });
        at_node.emit(EventKind::NodeRecover { node: opts.id });
    }
    let recovery = node.recover();
    tcp.apply_effects(recovery);

    // -- a co-hosted Runtime on the same backend: each boot commits a
    // genuine action recording the incarnation, proving the full local
    // stack (locks, undo, WAL) runs over the same disk as the mirror.
    // Untraced: its action/object ids are per-process, so they would
    // collide across the merged cluster trace — only protocol events
    // belong in a per-node trace.
    let runtime = Runtime::builder()
        .backend(Arc::clone(&backend) as Arc<dyn chroma_core::PermanenceBackend>)
        .at_node(opts.id)
        .build();
    let boot = runtime
        .create_object(&u64::from(restarting))
        .map_err(|e| format!("boot action failed: {e}"))?;
    runtime
        .atomic(|a| a.modify(boot, |count: &mut u64| *count += 1))
        .map_err(|e| format!("boot action failed: {e}"))?;

    let disk = Arc::clone(&backend);
    let barrier = move |n: &mut Node| {
        n.persist_durable(disk.store())
            .expect("durability barrier: cannot mirror stable state");
    };

    match opts.role {
        Role::Worker => run_worker(opts, &mut node, &mut tcp, barrier),
        Role::Coordinator => run_coordinator(opts, &mut node, &mut tcp, barrier),
    }
}

/// Answer prepares/decisions forever; exit cleanly when stdin closes
/// (the supervising process went away) — or never, if killed first.
fn run_worker(
    opts: &Opts,
    node: &mut Node,
    tcp: &mut TcpTransport,
    mut barrier: impl FnMut(&mut Node),
) -> Result<(), String> {
    println!("worker {} ready on {}", opts.id, tcp.local_addr());
    std::io::stdout().flush().ok();
    std::thread::spawn(|| {
        let mut sink = Vec::new();
        std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink).ok();
        std::process::exit(0);
    });
    loop {
        if let Some(event) = tcp.poll(Some(Duration::from_millis(50))) {
            surface_gap(&event);
            dispatch_with(node, tcp, event, &mut barrier);
        }
    }
}

/// Drive `--txns` transactions through 2PC, reporting each outcome on
/// stdout, then linger to answer straggler decision queries.
fn run_coordinator(
    opts: &Opts,
    node: &mut Node,
    tcp: &mut TcpTransport,
    mut barrier: impl FnMut(&mut Node),
) -> Result<(), String> {
    println!("coordinator {} ready on {}", opts.id, tcp.local_addr());
    std::io::stdout().flush().ok();
    let participants: Vec<NodeId> = opts.peers.iter().map(|&(peer, _)| peer).collect();
    if participants.is_empty() {
        return Err("a coordinator needs at least one --peer".into());
    }
    let mut committed = 0u64;
    for i in 1..=opts.txns {
        let txn = TxnId(i);
        let object = txn_object(i);
        let writes: HashMap<NodeId, Vec<Write>> = participants
            .iter()
            .map(|&p| {
                (
                    p,
                    vec![Write {
                        object,
                        state: StoreBytes::from(txn_value(opts.seed, i)),
                    }],
                )
            })
            .collect();
        println!("begin txn {i} obj {}", object.as_raw());
        std::io::stdout().flush().ok();
        let effects = node.begin_transaction(txn, writes);
        tcp.apply_effects(effects);
        let deadline = Instant::now() + TXN_DEADLINE;
        while node.coordinator_active(txn) && Instant::now() < deadline {
            if let Some(event) = tcp.poll(Some(Duration::from_millis(50))) {
                surface_gap(&event);
                dispatch_with(node, tcp, event, &mut barrier);
            }
        }
        let outcome = if node.coordinator_outcome(txn) == Some(true) {
            committed += 1;
            "commit"
        } else {
            "abort"
        };
        println!("txn {i} {outcome} obj {}", object.as_raw());
        std::io::stdout().flush().ok();
    }
    // stragglers: a participant restarted late may still be querying
    let linger_until = Instant::now() + Duration::from_millis(opts.linger_ms);
    while Instant::now() < linger_until {
        if let Some(event) = tcp.poll(Some(Duration::from_millis(50))) {
            surface_gap(&event);
            dispatch_with(node, tcp, event, &mut barrier);
        }
    }
    println!("coordinator done: {committed}/{} committed", opts.txns);
    std::io::stdout().flush().ok();
    Ok(())
}

/// The masking layer surfaces sequence holes instead of hiding them;
/// a host must at least say so out loud.
fn surface_gap(event: &TransportEvent) {
    if let TransportEvent::Gap {
        from,
        expected,
        got,
    } = event
    {
        eprintln!("chroma-node: gap from {from}: frames {expected}..{got} lost for good");
    }
}
