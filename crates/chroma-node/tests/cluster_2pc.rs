//! The acceptance test of the process deployment: a 3-process cluster
//! (one coordinator, two workers over `TcpTransport`) survives
//! `kill -9` of a worker mid-2PC, recovers from its durable mirror,
//! keeps committing, and the merged per-process traces audit clean.
//!
//! `CHROMA_TORTURE_SEED` varies the write payloads, transaction count
//! and kill point, so the CI seed matrix explores different interleavings.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use chroma_base::ObjectId;
use chroma_obs::{merge_trace_files, TraceAuditor};
use chroma_store::DiskStore;

const BIN: &str = env!("CARGO_BIN_EXE_chroma-node");

fn seed() -> u64 {
    std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Three ports nobody is listening on right now.
fn free_ports() -> [u16; 3] {
    let holds: Vec<TcpListener> = (0..3)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    let ports: Vec<u16> = holds
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect();
    [ports[0], ports[1], ports[2]]
}

/// Kills the child on drop so a panicking test leaks no processes.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

struct ClusterPaths {
    dir: PathBuf,
    ports: [u16; 3],
}

impl ClusterPaths {
    fn new(tag: &str) -> ClusterPaths {
        let dir = std::env::temp_dir().join(format!(
            "chroma-cluster-{tag}-{}-{}",
            std::process::id(),
            seed()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        ClusterPaths {
            dir,
            ports: free_ports(),
        }
    }

    fn addr(&self, node: usize) -> String {
        format!("127.0.0.1:{}", self.ports[node - 1])
    }

    fn data(&self, node: usize) -> PathBuf {
        self.dir.join(format!("n{node}"))
    }

    fn trace(&self, node: usize) -> PathBuf {
        self.dir.join(format!("n{node}.jsonl"))
    }

    fn spawn_worker(&self, node: usize) -> Reaped {
        let peers: Vec<usize> = [1, 2, 3].into_iter().filter(|&p| p != node).collect();
        let mut cmd = Command::new(BIN);
        cmd.arg("worker")
            .args(["--id", &node.to_string()])
            .args(["--listen", &self.addr(node)]);
        for p in peers {
            cmd.args(["--peer", &format!("{p}={}", self.addr(p))]);
        }
        cmd.args(["--data", self.data(node).to_str().unwrap()])
            .args(["--trace", self.trace(node).to_str().unwrap()])
            .stdin(Stdio::piped()) // held open: closing it asks the worker to exit
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn worker");
        // don't proceed until it is listening, so the coordinator's
        // first prepare finds a live peer (except after deliberate kills)
        let stdout = child.stdout.take().unwrap();
        let mut ready = String::new();
        BufReader::new(stdout).read_line(&mut ready).unwrap();
        assert!(ready.contains("ready"), "worker said: {ready}");
        Reaped(child)
    }

    fn spawn_coordinator(&self, txns: u64) -> (Reaped, mpsc::Receiver<String>) {
        let mut cmd = Command::new(BIN);
        cmd.arg("coordinator")
            .args(["--id", "1"])
            .args(["--listen", &self.addr(1)])
            .args(["--peer", &format!("2={}", self.addr(2))])
            .args(["--peer", &format!("3={}", self.addr(3))])
            .args(["--data", self.data(1).to_str().unwrap()])
            .args(["--trace", self.trace(1).to_str().unwrap()])
            .args(["--txns", &txns.to_string()])
            .args(["--seed", &seed().to_string()])
            .args(["--linger-ms", "1500"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn coordinator");
        let stdout = child.stdout.take().unwrap();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        (Reaped(child), rx)
    }
}

/// What the coordinator reported per transaction.
#[derive(Debug)]
struct Outcomes {
    committed: Vec<u64>,
    aborted: Vec<u64>,
}

fn parse_outcome(line: &str, outcomes: &mut Outcomes) {
    let words: Vec<&str> = line.split_whitespace().collect();
    if let ["txn", n, verdict, "obj", _] = words.as_slice() {
        let n: u64 = n.parse().unwrap();
        match *verdict {
            "commit" => outcomes.committed.push(n),
            "abort" => outcomes.aborted.push(n),
            other => panic!("unexpected verdict {other} in {line}"),
        }
    }
}

fn expected_value(txn: u64) -> Vec<u8> {
    format!("v{txn}-s{}", seed()).into_bytes()
}

fn txn_object(txn: u64) -> ObjectId {
    ObjectId::from_raw(1_000 + txn)
}

/// Opens a worker's data directory post-mortem and checks every
/// committed transaction's write is installed — and no aborted one's.
fn check_store(data: &Path, outcomes: &Outcomes) {
    let disk = DiskStore::open(data).expect("reopen worker store");
    for &txn in &outcomes.committed {
        let state = disk
            .read(txn_object(txn))
            .expect("read store")
            .unwrap_or_else(|| panic!("committed txn {txn} missing from {}", data.display()));
        assert_eq!(
            state.as_ref(),
            expected_value(txn).as_slice(),
            "txn {txn} installed the wrong bytes"
        );
    }
    for &txn in &outcomes.aborted {
        assert!(
            disk.read(txn_object(txn)).expect("read store").is_none(),
            "aborted txn {txn} must not be installed in {}",
            data.display()
        );
    }
}

fn audit_merged(paths: &ClusterPaths) {
    let merged =
        merge_trace_files(&[paths.trace(1), paths.trace(2), paths.trace(3)]).expect("merge traces");
    assert!(
        !merged.events.is_empty(),
        "a traced cluster run must produce events"
    );
    let report = TraceAuditor::audit_events(&merged.events);
    assert!(
        report.is_clean(),
        "merged cluster trace must audit clean:\n{report}"
    );
}

fn drain_outcomes(
    rx: &mpsc::Receiver<String>,
    txns: u64,
    mut on_line: impl FnMut(&str),
) -> Outcomes {
    let mut outcomes = Outcomes {
        committed: Vec::new(),
        aborted: Vec::new(),
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    while (outcomes.committed.len() + outcomes.aborted.len()) < txns as usize {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(
            !left.is_zero(),
            "coordinator timed out; so far {outcomes:?}"
        );
        let line = rx
            .recv_timeout(left)
            .expect("coordinator stdout closed early");
        on_line(&line);
        parse_outcome(&line, &mut outcomes);
    }
    outcomes
}

#[test]
fn healthy_cluster_commits_everything_and_audits_clean() {
    let paths = ClusterPaths::new("healthy");
    let _w2 = paths.spawn_worker(2);
    let _w3 = paths.spawn_worker(3);
    let txns = 3;
    let (mut coord, rx) = paths.spawn_coordinator(txns);
    let outcomes = drain_outcomes(&rx, txns, |_| {});
    assert_eq!(
        outcomes.committed.len() as u64,
        txns,
        "healthy cluster must commit everything: {outcomes:?}"
    );
    coord.0.wait().expect("coordinator exit");
    check_store(&paths.data(2), &outcomes);
    check_store(&paths.data(3), &outcomes);
    audit_merged(&paths);
    std::fs::remove_dir_all(&paths.dir).ok();
}

#[test]
fn kill9_mid_2pc_recovers_and_audits_clean() {
    let paths = ClusterPaths::new("kill9");
    let mut w2 = Some(paths.spawn_worker(2));
    let _w3 = paths.spawn_worker(3);

    let s = seed();
    let txns = 5 + (s % 3); // 5..=7
    let kill_at = 2 + (s % 2); // SIGKILL worker 2 as txn 2 or 3 begins
    let (mut coord, rx) = paths.spawn_coordinator(txns);

    let begin_marker = format!("begin txn {kill_at} ");
    let mut killed = false;
    let outcomes = drain_outcomes(&rx, txns, |line| {
        if !killed && line.starts_with(&begin_marker) {
            // SIGKILL, not a polite shutdown: the durable mirror is all
            // the next incarnation gets
            w2.take()
                .expect("worker 2 alive")
                .0
                .kill()
                .expect("kill -9");
            killed = true;
            w2 = Some(paths.spawn_worker(2));
        }
    });
    assert!(killed, "the kill point must have been reached");
    assert!(
        outcomes.committed.iter().any(|&t| t > kill_at),
        "the cluster must commit again after the kill: {outcomes:?}"
    );
    coord.0.wait().expect("coordinator exit");

    // the restarted worker must have caught up on every commit it was
    // told about — its store is checked against the same expectations
    // as the never-killed one
    check_store(&paths.data(2), &outcomes);
    check_store(&paths.data(3), &outcomes);
    audit_merged(&paths);
    std::fs::remove_dir_all(&paths.dir).ok();
}

/// The same durable mirror that survives `kill -9` must also produce a
/// clean second boot: stable state round-trips, and the re-reported
/// outcomes match what the coordinator printed the first time.
#[test]
fn worker_store_round_trips_across_restart() {
    let paths = ClusterPaths::new("roundtrip");
    let w2 = paths.spawn_worker(2);
    let _w3 = paths.spawn_worker(3);
    let txns = 2;
    let (mut coord, rx) = paths.spawn_coordinator(txns);
    let outcomes = drain_outcomes(&rx, txns, |_| {});
    coord.0.wait().expect("coordinator exit");
    drop(w2); // SIGKILL via Reaped

    // boot a fresh incarnation with no cluster around it: it must come
    // up from the mirror alone (recovery sends go nowhere) and its
    // trace must extend the old one, not restart it
    let before = std::fs::read_to_string(paths.trace(2)).unwrap().len();
    let w2b = paths.spawn_worker(2);
    std::thread::sleep(Duration::from_millis(300));
    drop(w2b);
    let after = std::fs::read_to_string(paths.trace(2)).unwrap();
    assert!(after.len() > before, "restart must append to the trace");
    assert!(
        after.contains("node_recover"),
        "restart must record its recovery"
    );
    check_store(&paths.data(2), &outcomes);

    // counts per worker trace survive merging (sanity on the lenient path)
    let merged = merge_trace_files(&[paths.trace(2)]).expect("merge single");
    let by_lc: Vec<u64> = merged.events.iter().map(|e| e.lc).collect();
    let mut sorted = by_lc.clone();
    sorted.sort_unstable();
    assert_eq!(by_lc, sorted, "single-node trace must be lc-ordered");
    std::fs::remove_dir_all(&paths.dir).ok();
}

/// `--help`-style misuse must not start half a node.
#[test]
fn bad_usage_exits_with_diagnostics() {
    let out = Command::new(BIN)
        .arg("observer")
        .output()
        .expect("run chroma-node");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = Command::new(BIN)
        .args(["worker", "--id", "2"])
        .output()
        .expect("run chroma-node");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--listen"));
}
