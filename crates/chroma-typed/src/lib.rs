//! Type-specific concurrency control over chroma actions.
//!
//! The paper (§2) reviews an enhancement of the object/action model:
//! *"type specific concurrency control … is a particularly attractive
//! means of increasing the concurrency in a system. The idea is to
//! permit concurrent read/write or write/write operations on an object
//! from different atomic actions provided these operations can be shown
//! to be non interfering (for example, for a directory object, reading
//! and deleting different entries can be permitted to take place
//! simultaneously). Object-oriented systems are well suited to this
//! approach, since semantic knowledge about the operations of objects
//! can be exploited."*
//!
//! This crate provides two such semantically-locked persistent types,
//! built purely from object granularity and the standard coloured lock
//! modes (no changes to the lock manager needed — the semantic
//! knowledge is encoded in how each type maps its operations onto
//! objects):
//!
//! * [`KeyedDirectory`] — the paper's own example: a directory whose
//!   entries are individually lockable, so operations on *different*
//!   keys never conflict;
//! * [`EscrowCounter`] — a striped counter in the spirit of the
//!   add/subtract commutativity discussion: concurrent increments land
//!   on different stripes and do not conflict; reading the total locks
//!   all stripes.
//!
//! Both types work inside any action — plain atomic, serializing step,
//! glued step or independent — because they only use the ordinary
//! [`ActionScope`](chroma_core::ActionScope) operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod directory;

pub use counter::EscrowCounter;
pub use directory::KeyedDirectory;
