//! The paper's directory example: per-entry lockable directories.

use std::marker::PhantomData;

use chroma_core::{ActionError, ActionScope, ObjectId, Runtime};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// One bucket's persisted form: association list of key → encoded value.
type Bucket = Vec<(String, Vec<u8>)>;

/// A persistent directory whose entries are individually lockable, so
/// operations on different keys do not conflict.
///
/// This is the §2 example verbatim: *"for a directory object, reading
/// and deleting different entries can be permitted to take place
/// simultaneously."* The semantic knowledge — that directory operations
/// on distinct keys commute — is encoded by spreading entries over
/// `buckets` separate persistent objects; each operation locks only its
/// key's bucket. Keys hashing to the same bucket still serialize
/// (granularity is the bucket), so size `buckets` for the concurrency
/// you need.
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
/// use chroma_typed::KeyedDirectory;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let dir: KeyedDirectory<String> = KeyedDirectory::create(&rt, 8)?;
/// rt.atomic(|a| dir.insert(a, "printer", &"room 3".to_owned()))?;
/// assert_eq!(
///     rt.atomic(|a| dir.lookup(a, "printer"))?,
///     Some("room 3".to_owned())
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KeyedDirectory<V> {
    buckets: Vec<ObjectId>,
    _value: PhantomData<fn() -> V>,
}

impl<V: Serialize + DeserializeOwned> KeyedDirectory<V> {
    /// Creates an empty directory spread over `buckets` lockable parts.
    ///
    /// # Errors
    ///
    /// Backend or codec failures creating the bucket objects.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn create(rt: &Runtime, buckets: usize) -> Result<Self, ActionError> {
        assert!(buckets > 0, "a directory needs at least one bucket");
        let mut objects = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            objects.push(rt.create_object::<Bucket>(&Vec::new())?);
        }
        Ok(KeyedDirectory {
            buckets: objects,
            _value: PhantomData,
        })
    }

    /// Returns the number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, key: &str) -> ObjectId {
        // FNV-1a over the key bytes: stable, dependency-free.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.buckets[(hash as usize) % self.buckets.len()]
    }

    /// Binds `key` to `value`, returning the previous value if any.
    /// Write-locks only the key's bucket.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn insert(
        &self,
        scope: &ActionScope<'_>,
        key: &str,
        value: &V,
    ) -> Result<Option<V>, ActionError> {
        let encoded = chroma_store_codec_to_bytes(value)?;
        let bucket = self.bucket_of(key);
        let previous = scope.modify_in(
            scope.default_colour(),
            bucket,
            |entries: &mut Bucket| match entries.iter_mut().find(|(k, _)| k == key) {
                Some((_, existing)) => Some(std::mem::replace(existing, encoded)),
                None => {
                    entries.push((key.to_owned(), encoded));
                    None
                }
            },
        )?;
        previous
            .map(|bytes| chroma_store_codec_from_bytes(&bytes))
            .transpose()
    }

    /// Removes `key`, returning its value if it was bound. Write-locks
    /// only the key's bucket.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn remove(&self, scope: &ActionScope<'_>, key: &str) -> Result<Option<V>, ActionError> {
        let bucket = self.bucket_of(key);
        let removed = scope.modify_in(scope.default_colour(), bucket, |entries: &mut Bucket| {
            entries
                .iter()
                .position(|(k, _)| k == key)
                .map(|index| entries.remove(index).1)
        })?;
        removed
            .map(|bytes| chroma_store_codec_from_bytes(&bytes))
            .transpose()
    }

    /// Looks up `key`. Read-locks only the key's bucket, so lookups of
    /// different keys run concurrently with each other *and* with
    /// updates to other keys.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn lookup(&self, scope: &ActionScope<'_>, key: &str) -> Result<Option<V>, ActionError> {
        let bucket = self.bucket_of(key);
        let entries: Bucket = scope.read_in(scope.default_colour(), bucket)?;
        entries
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, bytes)| chroma_store_codec_from_bytes(&bytes))
            .transpose()
    }

    /// Returns every binding, sorted by key (read-locks all buckets —
    /// the one whole-directory operation).
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn entries(&self, scope: &ActionScope<'_>) -> Result<Vec<(String, V)>, ActionError> {
        let mut all = Vec::new();
        for &bucket in &self.buckets {
            let entries: Bucket = scope.read_in(scope.default_colour(), bucket)?;
            for (key, bytes) in entries {
                all.push((key, chroma_store_codec_from_bytes(&bytes)?));
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(all)
    }

    /// Returns the number of bindings (read-locks all buckets).
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn len(&self, scope: &ActionScope<'_>) -> Result<usize, ActionError> {
        let mut count = 0;
        for &bucket in &self.buckets {
            count += scope
                .read_in::<Bucket>(scope.default_colour(), bucket)?
                .len();
        }
        Ok(count)
    }

    /// Returns `true` if the directory holds no bindings.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn is_empty(&self, scope: &ActionScope<'_>) -> Result<bool, ActionError> {
        Ok(self.len(scope)? == 0)
    }
}

fn chroma_store_codec_to_bytes<V: Serialize>(value: &V) -> Result<Vec<u8>, ActionError> {
    Ok(chroma_store::codec::to_bytes(value)?)
}

fn chroma_store_codec_from_bytes<V: DeserializeOwned>(bytes: &[u8]) -> Result<V, ActionError> {
    Ok(chroma_store::codec::from_bytes(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chroma_base::ColourSet;
    use chroma_core::RuntimeConfig;
    use std::time::Duration;

    fn rt_fast() -> Runtime {
        Runtime::builder()
            .config(RuntimeConfig {
                lock_timeout: Some(Duration::from_millis(300)),
            })
            .build()
    }

    #[test]
    fn insert_lookup_remove() {
        let rt = Runtime::builder().build();
        let dir: KeyedDirectory<u32> = KeyedDirectory::create(&rt, 4).unwrap();
        rt.atomic(|a| {
            assert_eq!(dir.insert(a, "a", &1)?, None);
            assert_eq!(dir.insert(a, "a", &2)?, Some(1));
            assert_eq!(dir.lookup(a, "a")?, Some(2));
            assert_eq!(dir.remove(a, "a")?, Some(2));
            assert_eq!(dir.lookup(a, "a")?, None);
            assert_eq!(dir.remove(a, "a")?, None);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn entries_and_len() {
        let rt = Runtime::builder().build();
        let dir: KeyedDirectory<String> = KeyedDirectory::create(&rt, 3).unwrap();
        rt.atomic(|a| {
            dir.insert(a, "b", &"two".to_owned())?;
            dir.insert(a, "a", &"one".to_owned())?;
            assert!(!dir.is_empty(a)?);
            assert_eq!(dir.len(a)?, 2);
            let entries = dir.entries(a)?;
            assert_eq!(entries[0].0, "a");
            assert_eq!(entries[1].0, "b");
            Ok(())
        })
        .unwrap();
    }

    /// Find two keys living in different buckets of `dir`.
    fn disjoint_keys(dir: &KeyedDirectory<u32>) -> (String, String) {
        let first = "k0".to_owned();
        let home = dir.bucket_of(&first);
        for i in 1..1000 {
            let candidate = format!("k{i}");
            if dir.bucket_of(&candidate) != home {
                return (first, candidate);
            }
        }
        panic!("no disjoint keys found");
    }

    #[test]
    fn different_keys_do_not_conflict() {
        // The paper's claim: "reading and deleting different entries can
        // be permitted to take place simultaneously."
        let rt = rt_fast();
        let dir: KeyedDirectory<u32> = KeyedDirectory::create(&rt, 8).unwrap();
        let (k1, k2) = disjoint_keys(&dir);
        rt.atomic(|a| {
            dir.insert(a, &k1, &1)?;
            dir.insert(a, &k2, &2)
        })
        .unwrap();

        // Action 1 deletes k1 and stays open; action 2 reads AND writes
        // k2 without blocking.
        let a1 = rt
            .begin_top(ColourSet::single(rt.default_colour()))
            .unwrap();
        dir.remove(&rt.scope(a1).unwrap(), &k1).unwrap();
        rt.atomic(|a| {
            assert_eq!(dir.lookup(a, &k2)?, Some(2));
            dir.insert(a, &k2, &22)?;
            Ok(())
        })
        .unwrap();
        rt.commit(a1).unwrap();
        rt.atomic(|a| {
            assert_eq!(dir.lookup(a, &k1)?, None);
            assert_eq!(dir.lookup(a, &k2)?, Some(22));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn same_key_operations_serialize() {
        let rt = rt_fast();
        let dir: KeyedDirectory<u32> = KeyedDirectory::create(&rt, 8).unwrap();
        rt.atomic(|a| dir.insert(a, "x", &1)).unwrap();
        let a1 = rt
            .begin_top(ColourSet::single(rt.default_colour()))
            .unwrap();
        dir.insert(&rt.scope(a1).unwrap(), "x", &2).unwrap();
        // A second action on the same key blocks (here: times out).
        let blocked = rt.atomic(|a| dir.lookup(a, "x"));
        assert!(blocked.is_err());
        rt.commit(a1).unwrap();
        assert_eq!(rt.atomic(|a| dir.lookup(a, "x")).unwrap(), Some(2));
    }

    #[test]
    fn aborted_updates_are_undone_per_key() {
        let rt = Runtime::builder().build();
        let dir: KeyedDirectory<u32> = KeyedDirectory::create(&rt, 4).unwrap();
        rt.atomic(|a| dir.insert(a, "kept", &1)).unwrap();
        let _ = rt.atomic(|a| {
            dir.insert(a, "kept", &99)?;
            dir.insert(a, "new", &5)?;
            Err::<(), _>(ActionError::failed("abort"))
        });
        rt.atomic(|a| {
            assert_eq!(dir.lookup(a, "kept")?, Some(1));
            assert_eq!(dir.lookup(a, "new")?, None);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn concurrent_threads_on_disjoint_keys() {
        let rt = Runtime::builder().build();
        let dir: std::sync::Arc<KeyedDirectory<u32>> =
            std::sync::Arc::new(KeyedDirectory::create(&rt, 16).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rt = rt.clone();
                let dir = std::sync::Arc::clone(&dir);
                std::thread::spawn(move || {
                    for i in 0..25u32 {
                        let key = format!("t{t}-{i}");
                        rt.atomic(|a| dir.insert(a, &key, &i)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        rt.atomic(|a| {
            assert_eq!(dir.len(a)?, 100);
            Ok(())
        })
        .unwrap();
    }
}
