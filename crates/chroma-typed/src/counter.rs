//! A striped (escrow-style) counter: commutative increments without
//! write-write conflicts.

use std::sync::atomic::{AtomicUsize, Ordering};

use chroma_core::{ActionError, ActionScope, ObjectId, Runtime};

/// A persistent counter whose `add` operations from different actions
/// do not conflict.
///
/// The §2 observation is that `add()` and `subtract()` commute, so
/// running them concurrently from different actions is safe even though
/// both "write" the counter. Chroma realises this with *semantic
/// decomposition*: the counter's value is the sum of `stripes` separate
/// persistent objects, and each `add` write-locks only one stripe
/// (chosen round-robin). Up to `stripes` actions can add concurrently;
/// all the usual action guarantees still hold per stripe — an aborting
/// action's additions are undone, and committed additions are permanent.
///
/// [`value`](EscrowCounter::value) reads every stripe (read locks on
/// all), so totals are serializable with respect to the adds — exactly
/// the read/write asymmetry type-specific control is meant to buy.
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
/// use chroma_typed::EscrowCounter;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let hits = EscrowCounter::create(&rt, 4)?;
/// rt.atomic(|a| hits.add(a, 3))?;
/// rt.atomic(|a| hits.add(a, 4))?;
/// assert_eq!(rt.atomic(|a| hits.value(a))?, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EscrowCounter {
    stripes: Vec<ObjectId>,
    next: AtomicUsize,
}

impl EscrowCounter {
    /// Creates a zeroed counter decomposed into `stripes` independently
    /// lockable parts (more stripes → more concurrent adders).
    ///
    /// # Errors
    ///
    /// Backend or codec failures creating the stripe objects.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero.
    pub fn create(rt: &Runtime, stripes: usize) -> Result<Self, ActionError> {
        assert!(stripes > 0, "a counter needs at least one stripe");
        let mut objects = Vec::with_capacity(stripes);
        for _ in 0..stripes {
            objects.push(rt.create_object(&0i64)?);
        }
        Ok(EscrowCounter {
            stripes: objects,
            next: AtomicUsize::new(0),
        })
    }

    /// Returns how many stripes the counter has.
    #[must_use]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Adds `delta` (which may be negative — the paper's `subtract`)
    /// from inside an action, write-locking a single stripe.
    ///
    /// Concurrent `add`s from up to
    /// [`stripe_count`](EscrowCounter::stripe_count) actions proceed without blocking
    /// each other; if the preferred stripe is busy, the next free one
    /// is tried before waiting.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn add(&self, scope: &ActionScope<'_>, delta: i64) -> Result<(), ActionError> {
        let start = self.next.fetch_add(1, Ordering::Relaxed) % self.stripes.len();
        // First pass: try-lock stripes so concurrent adders spread out.
        for k in 0..self.stripes.len() {
            let stripe = self.stripes[(start + k) % self.stripes.len()];
            match scope.try_lock(scope.default_colour(), stripe, chroma_base::LockMode::Write) {
                Ok(()) => {
                    return scope.modify_in(scope.default_colour(), stripe, |v: &mut i64| {
                        *v += delta;
                    });
                }
                Err(ActionError::Lock(_)) => continue,
                Err(other) => return Err(other),
            }
        }
        // Every stripe busy: wait on the preferred one.
        scope.modify_in(
            scope.default_colour(),
            self.stripes[start],
            |v: &mut i64| {
                *v += delta;
            },
        )
    }

    /// Reads the total, read-locking every stripe (serializable with
    /// respect to all adders).
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn value(&self, scope: &ActionScope<'_>) -> Result<i64, ActionError> {
        let mut total = 0i64;
        for &stripe in &self.stripes {
            total += scope.read_in::<i64>(scope.default_colour(), stripe)?;
        }
        Ok(total)
    }

    /// Reads the last committed total without locks (debugging aid).
    ///
    /// # Errors
    ///
    /// Codec failures.
    pub fn committed_value(&self, rt: &Runtime) -> Result<i64, ActionError> {
        let mut total = 0i64;
        for &stripe in &self.stripes {
            total += rt.read_committed::<i64>(stripe)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chroma_core::RuntimeConfig;
    use std::time::Duration;

    #[test]
    fn adds_and_reads() {
        let rt = Runtime::builder().build();
        let counter = EscrowCounter::create(&rt, 3).unwrap();
        rt.atomic(|a| counter.add(a, 5)).unwrap();
        rt.atomic(|a| counter.add(a, -2)).unwrap();
        assert_eq!(rt.atomic(|a| counter.value(a)).unwrap(), 3);
        assert_eq!(counter.committed_value(&rt).unwrap(), 3);
    }

    #[test]
    fn aborted_add_is_undone() {
        let rt = Runtime::builder().build();
        let counter = EscrowCounter::create(&rt, 2).unwrap();
        rt.atomic(|a| counter.add(a, 10)).unwrap();
        let _ = rt.atomic(|a| {
            counter.add(a, 100)?;
            Err::<(), _>(ActionError::failed("abort"))
        });
        assert_eq!(counter.committed_value(&rt).unwrap(), 10);
    }

    #[test]
    fn concurrent_adders_do_not_conflict() {
        // Two actions add concurrently while both stay open — with a
        // single shared object the second would block until the first
        // commits; with stripes both proceed.
        let rt = Runtime::builder()
            .config(RuntimeConfig {
                lock_timeout: Some(Duration::from_millis(300)),
            })
            .build();
        let counter = EscrowCounter::create(&rt, 2).unwrap();
        let a1 = rt
            .begin_top(chroma_base::ColourSet::single(rt.default_colour()))
            .unwrap();
        let a2 = rt
            .begin_top(chroma_base::ColourSet::single(rt.default_colour()))
            .unwrap();
        counter.add(&rt.scope(a1).unwrap(), 1).unwrap();
        counter.add(&rt.scope(a2).unwrap(), 2).unwrap(); // no blocking
        rt.commit(a1).unwrap();
        rt.commit(a2).unwrap();
        assert_eq!(counter.committed_value(&rt).unwrap(), 3);
    }

    #[test]
    fn reader_waits_for_open_adders() {
        // value() is serializable: it cannot observe an uncommitted add.
        let rt = Runtime::builder()
            .config(RuntimeConfig {
                lock_timeout: Some(Duration::from_millis(200)),
            })
            .build();
        let counter = EscrowCounter::create(&rt, 2).unwrap();
        let adder = rt
            .begin_top(chroma_base::ColourSet::single(rt.default_colour()))
            .unwrap();
        counter.add(&rt.scope(adder).unwrap(), 7).unwrap();
        let read = rt.atomic(|a| counter.value(a));
        assert!(read.is_err(), "reader must block on the open adder");
        rt.commit(adder).unwrap();
        assert_eq!(rt.atomic(|a| counter.value(a)).unwrap(), 7);
    }

    #[test]
    fn parallel_throughput_no_lost_updates() {
        let rt = Runtime::builder().build();
        let counter = std::sync::Arc::new(EscrowCounter::create(&rt, 8).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let rt = rt.clone();
                let counter = std::sync::Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        rt.atomic(|a| counter.add(a, 1)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.committed_value(&rt).unwrap(), 400);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_rejected() {
        let rt = Runtime::builder().build();
        let _ = EscrowCounter::create(&rt, 0);
    }
}
