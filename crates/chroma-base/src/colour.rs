//! Colours, colour sets and the colour universe.
//!
//! A *colour* is an attribute statically assigned to an action (paper §5).
//! Actions may possess several colours; locks are acquired *in* one of the
//! requesting action's colours. The colour machinery is deliberately
//! cheap: a [`Colour`] is a small index and a [`ColourSet`] is a 64-bit
//! bitset, so colour tests on the locking fast path are single
//! instructions.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::ColourError;

/// Maximum number of colours that may be live simultaneously in one
/// [`ColourUniverse`].
pub const MAX_LIVE_COLOURS: usize = 64;

/// A colour: the attribute the paper assigns to actions to relax atomicity
/// boundaries selectively.
///
/// Colours are created by (and scoped to) a [`ColourUniverse`]; comparing
/// colours from different universes is meaningless but harmless.
///
/// # Examples
///
/// ```
/// use chroma_base::ColourUniverse;
///
/// let universe = ColourUniverse::new();
/// let red = universe.colour("red");
/// assert_eq!(universe.colour("red"), red); // interned by name
/// assert_eq!(universe.name(red), "red");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Colour(u8);

impl Colour {
    /// Returns the slot index of this colour inside its universe.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a colour from a raw slot index.
    ///
    /// Intended for serialisation layers; the index must come from
    /// [`Colour::index`] on the same universe.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_LIVE_COLOURS`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(
            index < MAX_LIVE_COLOURS,
            "colour index {index} out of range (max {MAX_LIVE_COLOURS})"
        );
        Colour(index as u8)
    }
}

impl fmt::Display for Colour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A set of colours, stored as a 64-bit bitset.
///
/// `ColourSet` is the type of an action's colour assignment. It is `Copy`
/// and all operations are O(1).
///
/// # Examples
///
/// ```
/// use chroma_base::{ColourSet, ColourUniverse};
///
/// let u = ColourUniverse::new();
/// let (red, blue) = (u.colour("red"), u.colour("blue"));
/// let set = ColourSet::from_iter([red, blue]);
/// assert!(set.contains(red));
/// assert!(set.intersects(ColourSet::single(blue)));
/// assert_eq!(set.minus(ColourSet::single(red)), ColourSet::single(blue));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ColourSet(u64);

impl ColourSet {
    /// The empty colour set.
    pub const EMPTY: ColourSet = ColourSet(0);

    /// Creates an empty colour set.
    #[must_use]
    pub const fn new() -> Self {
        ColourSet(0)
    }

    /// Creates a set containing exactly one colour.
    #[must_use]
    pub const fn single(colour: Colour) -> Self {
        ColourSet(1 << colour.0)
    }

    /// Returns `true` if the set contains `colour`.
    #[must_use]
    pub const fn contains(self, colour: Colour) -> bool {
        self.0 & (1 << colour.0) != 0
    }

    /// Returns the set with `colour` added.
    #[must_use]
    pub const fn with(self, colour: Colour) -> Self {
        ColourSet(self.0 | (1 << colour.0))
    }

    /// Returns the set with `colour` removed.
    #[must_use]
    pub const fn without(self, colour: Colour) -> Self {
        ColourSet(self.0 & !(1 << colour.0))
    }

    /// Returns the union of the two sets.
    #[must_use]
    pub const fn union(self, other: ColourSet) -> Self {
        ColourSet(self.0 | other.0)
    }

    /// Returns the intersection of the two sets.
    #[must_use]
    pub const fn intersection(self, other: ColourSet) -> Self {
        ColourSet(self.0 & other.0)
    }

    /// Returns the colours in `self` that are not in `other`.
    #[must_use]
    pub const fn minus(self, other: ColourSet) -> Self {
        ColourSet(self.0 & !other.0)
    }

    /// Returns `true` if the two sets share at least one colour.
    #[must_use]
    pub const fn intersects(self, other: ColourSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `true` if every colour of `self` is in `other`.
    #[must_use]
    pub const fn is_subset_of(self, other: ColourSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` if the set contains no colours.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the number of colours in the set.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the colours in the set, in increasing index order.
    #[must_use]
    pub fn iter(self) -> ColourSetIter {
        ColourSetIter(self.0)
    }
}

impl FromIterator<Colour> for ColourSet {
    fn from_iter<I: IntoIterator<Item = Colour>>(iter: I) -> Self {
        iter.into_iter()
            .fold(ColourSet::EMPTY, |set, colour| set.with(colour))
    }
}

impl Extend<Colour> for ColourSet {
    fn extend<I: IntoIterator<Item = Colour>>(&mut self, iter: I) {
        for colour in iter {
            *self = self.with(colour);
        }
    }
}

impl From<Colour> for ColourSet {
    fn from(colour: Colour) -> Self {
        ColourSet::single(colour)
    }
}

impl IntoIterator for ColourSet {
    type Item = Colour;
    type IntoIter = ColourSetIter;

    fn into_iter(self) -> ColourSetIter {
        self.iter()
    }
}

impl fmt::Debug for ColourSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ColourSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for colour in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{colour}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over the colours of a [`ColourSet`], produced by
/// [`ColourSet::iter`].
#[derive(Clone, Debug)]
pub struct ColourSetIter(u64);

impl Iterator for ColourSetIter {
    type Item = Colour;

    fn next(&mut self) -> Option<Colour> {
        if self.0 == 0 {
            return None;
        }
        let index = self.0.trailing_zeros() as u8;
        self.0 &= self.0 - 1;
        Some(Colour(index))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ColourSetIter {}

#[derive(Default)]
struct UniverseState {
    /// `Some(name)` for live slots, `None` for free slots.
    slots: Vec<Option<String>>,
}

/// The registry of colours for one runtime.
///
/// Colours are interned by name: asking twice for `"red"` yields the same
/// [`Colour`]. Anonymous colours (used by the automatic colour-assignment
/// compiler for independence boundaries) are allocated with
/// [`ColourUniverse::fresh`] and may be recycled with
/// [`ColourUniverse::release`] once no live action uses them, keeping
/// long-running systems inside the 64-live-colour budget.
///
/// The universe is cheap to clone; clones share the same registry.
///
/// # Examples
///
/// ```
/// use chroma_base::ColourUniverse;
///
/// let u = ColourUniverse::new();
/// let red = u.colour("red");
/// let anon = u.fresh().unwrap();
/// assert_ne!(red, anon);
/// u.release(anon);
/// ```
#[derive(Clone, Default)]
pub struct ColourUniverse {
    state: Arc<Mutex<UniverseState>>,
}

impl ColourUniverse {
    /// Creates an empty universe.
    #[must_use]
    pub fn new() -> Self {
        ColourUniverse::default()
    }

    /// Returns the colour interned under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the universe already holds [`MAX_LIVE_COLOURS`] live
    /// colours; use [`ColourUniverse::try_colour`] to handle exhaustion.
    #[must_use]
    pub fn colour(&self, name: &str) -> Colour {
        self.try_colour(name)
            .expect("colour universe exhausted (64 live colours)")
    }

    /// Returns the colour interned under `name`, creating it on first use.
    ///
    /// # Errors
    ///
    /// Returns [`ColourError::Exhausted`] if the universe already holds
    /// [`MAX_LIVE_COLOURS`] live colours.
    pub fn try_colour(&self, name: &str) -> Result<Colour, ColourError> {
        let mut state = self.state.lock();
        if let Some(index) = state
            .slots
            .iter()
            .position(|slot| slot.as_deref() == Some(name))
        {
            return Ok(Colour(index as u8));
        }
        Self::allocate(&mut state, name.to_owned())
    }

    /// Allocates a fresh anonymous colour.
    ///
    /// # Errors
    ///
    /// Returns [`ColourError::Exhausted`] if the universe already holds
    /// [`MAX_LIVE_COLOURS`] live colours.
    pub fn fresh(&self) -> Result<Colour, ColourError> {
        let mut state = self.state.lock();
        let name = format!("#anon-{}", state.slots.len());
        Self::allocate(&mut state, name)
    }

    /// Releases a colour back to the universe so its slot can be reused.
    ///
    /// Callers must ensure no live action still possesses the colour; the
    /// chroma runtime does this automatically for compiler-allocated
    /// colours.
    pub fn release(&self, colour: Colour) {
        let mut state = self.state.lock();
        if let Some(slot) = state.slots.get_mut(colour.index()) {
            *slot = None;
        }
    }

    /// Returns the name under which `colour` was interned.
    ///
    /// Released slots report `"<released>"`.
    #[must_use]
    pub fn name(&self, colour: Colour) -> String {
        let state = self.state.lock();
        state
            .slots
            .get(colour.index())
            .and_then(|slot| slot.clone())
            .unwrap_or_else(|| "<released>".to_owned())
    }

    /// Returns the number of live colours.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.state.lock().slots.iter().flatten().count()
    }

    fn allocate(state: &mut UniverseState, name: String) -> Result<Colour, ColourError> {
        if let Some(index) = state.slots.iter().position(Option::is_none) {
            state.slots[index] = Some(name);
            return Ok(Colour(index as u8));
        }
        if state.slots.len() >= MAX_LIVE_COLOURS {
            return Err(ColourError::Exhausted);
        }
        state.slots.push(Some(name));
        Ok(Colour((state.slots.len() - 1) as u8))
    }
}

impl fmt::Debug for ColourUniverse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("ColourUniverse")
            .field("live", &state.slots.iter().flatten().count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colours_are_interned_by_name() {
        let u = ColourUniverse::new();
        assert_eq!(u.colour("red"), u.colour("red"));
        assert_ne!(u.colour("red"), u.colour("blue"));
    }

    #[test]
    fn names_round_trip() {
        let u = ColourUniverse::new();
        let c = u.colour("magenta");
        assert_eq!(u.name(c), "magenta");
    }

    #[test]
    fn fresh_colours_are_distinct() {
        let u = ColourUniverse::new();
        let a = u.fresh().unwrap();
        let b = u.fresh().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn release_recycles_slots() {
        let u = ColourUniverse::new();
        for _ in 0..MAX_LIVE_COLOURS {
            u.fresh().unwrap();
        }
        assert!(matches!(u.fresh(), Err(ColourError::Exhausted)));
        u.release(Colour::from_index(5));
        let recycled = u.fresh().unwrap();
        assert_eq!(recycled.index(), 5);
    }

    #[test]
    fn universe_exhaustion_is_reported() {
        let u = ColourUniverse::new();
        for i in 0..MAX_LIVE_COLOURS {
            u.try_colour(&format!("c{i}")).unwrap();
        }
        assert_eq!(u.try_colour("one-too-many"), Err(ColourError::Exhausted));
        // Existing names still resolve.
        assert!(u.try_colour("c0").is_ok());
    }

    #[test]
    fn set_operations_behave_like_sets() {
        let u = ColourUniverse::new();
        let (r, g, b) = (u.colour("r"), u.colour("g"), u.colour("b"));
        let rg = ColourSet::from_iter([r, g]);
        let gb = ColourSet::from_iter([g, b]);
        assert_eq!(rg.union(gb).len(), 3);
        assert_eq!(rg.intersection(gb), ColourSet::single(g));
        assert_eq!(rg.minus(gb), ColourSet::single(r));
        assert!(rg.intersects(gb));
        assert!(!rg.minus(gb).intersects(gb));
        assert!(ColourSet::single(g).is_subset_of(rg));
        assert!(!rg.is_subset_of(gb));
    }

    #[test]
    fn set_iteration_is_ordered_and_complete() {
        let set = ColourSet::from_iter([
            Colour::from_index(9),
            Colour::from_index(1),
            Colour::from_index(42),
        ]);
        let indices: Vec<usize> = set.iter().map(Colour::index).collect();
        assert_eq!(indices, vec![1, 9, 42]);
        assert_eq!(set.iter().len(), 3);
    }

    #[test]
    fn empty_set_properties() {
        let set = ColourSet::EMPTY;
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.iter().count(), 0);
        assert!(set.is_subset_of(set));
        assert!(!set.intersects(set));
    }

    #[test]
    fn display_forms() {
        let set = ColourSet::from_iter([Colour::from_index(0), Colour::from_index(3)]);
        assert_eq!(set.to_string(), "{c0,c3}");
        assert_eq!(format!("{:?}", ColourSet::EMPTY), "{}");
    }

    #[test]
    fn extend_and_collect() {
        let mut set = ColourSet::new();
        set.extend([Colour::from_index(2)]);
        assert!(set.contains(Colour::from_index(2)));
        let collected: ColourSet = set.iter().collect();
        assert_eq!(collected, set);
    }
}
