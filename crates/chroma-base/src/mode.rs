//! Lock modes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The mode in which a lock is held on an object.
///
/// The paper (§5.2) assumes three modes:
///
/// * [`Read`](LockMode::Read) — shared read access;
/// * [`Write`](LockMode::Write) — exclusive write access;
/// * [`ExclusiveRead`](LockMode::ExclusiveRead) — exclusive *read*
///   access. Exclusive-read locks exist purely so that a coloured system
///   can implement the serializing/glued action structures: a control
///   action retains an exclusive-read lock in its own colour to fence an
///   object between two constituent actions without itself writing it.
///
/// # Examples
///
/// ```
/// use chroma_base::LockMode;
///
/// assert!(LockMode::Write.is_exclusive());
/// assert!(!LockMode::Read.is_exclusive());
/// assert!(LockMode::Write.permits_write());
/// assert!(!LockMode::ExclusiveRead.permits_write());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared read access; compatible with other read locks.
    Read,
    /// Exclusive read access; incompatible with every other lock.
    ExclusiveRead,
    /// Exclusive write access; incompatible with every other lock.
    Write,
}

impl LockMode {
    /// Returns `true` for modes incompatible with any concurrent holder
    /// (`Write` and `ExclusiveRead`).
    #[must_use]
    pub const fn is_exclusive(self) -> bool {
        matches!(self, LockMode::Write | LockMode::ExclusiveRead)
    }

    /// Returns `true` if holding the lock permits writing the object.
    #[must_use]
    pub const fn permits_write(self) -> bool {
        matches!(self, LockMode::Write)
    }

    /// Returns `true` if holding the lock permits reading the object.
    ///
    /// All three modes permit reading.
    #[must_use]
    pub const fn permits_read(self) -> bool {
        true
    }

    /// Returns the stronger of two modes.
    ///
    /// Used when a parent inherits a child's lock on an object it already
    /// holds: the parent keeps the most restrictive of the two modes.
    /// The strength order is `Read < ExclusiveRead < Write`.
    #[must_use]
    pub fn strongest(self, other: LockMode) -> LockMode {
        self.max(other)
    }

    /// Returns `true` if a holder of `self` may be joined by a new holder
    /// of `other` irrespective of ancestry (the plain compatibility
    /// matrix: only read/read is compatible).
    #[must_use]
    pub const fn compatible_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Read, LockMode::Read))
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LockMode::Read => "read",
            LockMode::ExclusiveRead => "exclusive-read",
            LockMode::Write => "write",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        for (a, b, expected) in [
            (Read, Read, true),
            (Read, Write, false),
            (Read, ExclusiveRead, false),
            (Write, Read, false),
            (Write, Write, false),
            (Write, ExclusiveRead, false),
            (ExclusiveRead, Read, false),
            (ExclusiveRead, Write, false),
            (ExclusiveRead, ExclusiveRead, false),
        ] {
            assert_eq!(a.compatible_with(b), expected, "{a} vs {b}");
        }
    }

    #[test]
    fn strength_order() {
        use LockMode::*;
        assert_eq!(Read.strongest(Write), Write);
        assert_eq!(ExclusiveRead.strongest(Read), ExclusiveRead);
        assert_eq!(Write.strongest(ExclusiveRead), Write);
        assert_eq!(Read.strongest(Read), Read);
    }

    #[test]
    fn exclusivity_and_permissions() {
        assert!(LockMode::ExclusiveRead.is_exclusive());
        assert!(LockMode::Write.permits_write());
        assert!(!LockMode::Read.permits_write());
        assert!(LockMode::Read.permits_read());
        assert!(LockMode::ExclusiveRead.permits_read());
    }

    #[test]
    fn display_names() {
        assert_eq!(LockMode::Read.to_string(), "read");
        assert_eq!(LockMode::Write.to_string(), "write");
        assert_eq!(LockMode::ExclusiveRead.to_string(), "exclusive-read");
    }
}
