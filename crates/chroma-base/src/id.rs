//! Opaque identifiers for actions, objects and nodes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an action (an atomic transaction, possibly nested and
/// possibly multi-coloured).
///
/// Values are allocated by the runtime that owns the action tree; they are
/// unique within one runtime and never reused.
///
/// # Examples
///
/// ```
/// use chroma_base::ActionId;
///
/// let a = ActionId::from_raw(7);
/// assert_eq!(a.as_raw(), 7);
/// assert_eq!(a.to_string(), "A7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ActionId(u64);

impl ActionId {
    /// Creates an identifier from its raw representation.
    ///
    /// Intended for runtimes allocating identifiers and for tests; two
    /// actions in the same runtime never share a raw value.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        ActionId(raw)
    }

    /// Returns the raw representation of the identifier.
    #[must_use]
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Identifier of a persistent object.
///
/// Objects are the unit of locking and of recovery: locks are acquired on
/// whole objects and before-images are taken of whole object states.
///
/// # Examples
///
/// ```
/// use chroma_base::ObjectId;
///
/// let o = ObjectId::from_raw(3);
/// assert_eq!(o.to_string(), "O3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Creates an identifier from its raw representation.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// Returns the raw representation of the identifier.
    #[must_use]
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// Identifier of a node (a fail-silent workstation) in the simulated
/// distributed system.
///
/// # Examples
///
/// ```
/// use chroma_base::NodeId;
///
/// let n = NodeId::from_raw(2);
/// assert_eq!(n.to_string(), "N2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an identifier from its raw representation.
    #[must_use]
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw representation of the identifier.
    #[must_use]
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_id_round_trips_raw_value() {
        assert_eq!(ActionId::from_raw(42).as_raw(), 42);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(ActionId::from_raw(1) < ActionId::from_raw(2));
        assert!(ObjectId::from_raw(9) > ObjectId::from_raw(3));
        assert!(NodeId::from_raw(0) < NodeId::from_raw(1));
    }

    #[test]
    fn display_forms_are_prefixed() {
        assert_eq!(ActionId::from_raw(5).to_string(), "A5");
        assert_eq!(ObjectId::from_raw(5).to_string(), "O5");
        assert_eq!(NodeId::from_raw(5).to_string(), "N5");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(ObjectId::from_raw(1), "one");
        assert_eq!(m.get(&ObjectId::from_raw(1)), Some(&"one"));
    }
}
