//! Error types shared across the chroma crates.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ActionId, Colour, LockMode, ObjectId};

/// Errors arising from colour allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ColourError {
    /// The universe already holds the maximum number of live colours.
    Exhausted,
}

impl fmt::Display for ColourError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColourError::Exhausted => {
                write!(f, "colour universe exhausted (64 live colours)")
            }
        }
    }
}

impl Error for ColourError {}

/// Why a lock request could not be granted *right now*.
///
/// A denial is not fatal: a blocking acquire waits for the conflicting
/// holders to release, while a try-acquire surfaces the denial to the
/// caller.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LockDenied {
    /// A holder that is not an ancestor of the requester holds a
    /// conflicting lock.
    ConflictingHolder {
        /// The holder that blocks the request.
        holder: ActionId,
        /// The mode in which the blocking lock is held.
        mode: LockMode,
    },
    /// The coloured write rule: a write lock of a different colour exists
    /// on the object, so a write may only be acquired in that colour.
    WrongWriteColour {
        /// The colour of the existing write lock(s).
        existing: Colour,
        /// The colour in which the request was made.
        requested: Colour,
    },
}

impl fmt::Display for LockDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockDenied::ConflictingHolder { holder, mode } => {
                write!(f, "conflicting {mode} lock held by non-ancestor {holder}")
            }
            LockDenied::WrongWriteColour {
                existing,
                requested,
            } => write!(
                f,
                "object already write-locked in colour {existing}; a write in colour \
                 {requested} is not permitted"
            ),
        }
    }
}

impl Error for LockDenied {}

/// Errors returned by lock acquisition.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LockError {
    /// A try-acquire was denied; the reason is attached.
    Denied {
        /// The object the request was made on.
        object: ObjectId,
        /// Why the request was denied.
        reason: LockDenied,
    },
    /// The requester was chosen as a deadlock victim while waiting.
    DeadlockVictim {
        /// The object the victim was waiting on.
        object: ObjectId,
    },
    /// A blocking acquire exceeded its deadline.
    Timeout {
        /// The object the request was made on.
        object: ObjectId,
    },
    /// The requesting action does not possess the colour it tried to lock
    /// in (paper rule: "when acquiring locks, a coloured action may only
    /// use the colours which it possesses").
    ColourNotHeld {
        /// The requesting action.
        action: ActionId,
        /// The colour it does not possess.
        colour: Colour,
    },
    /// The requesting action is not active (already committed or aborted).
    ActionNotActive {
        /// The requesting action.
        action: ActionId,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Denied { object, reason } => {
                write!(f, "lock on {object} denied: {reason}")
            }
            LockError::DeadlockVictim { object } => {
                write!(f, "aborted as deadlock victim while waiting on {object}")
            }
            LockError::Timeout { object } => {
                write!(f, "timed out waiting for lock on {object}")
            }
            LockError::ColourNotHeld { action, colour } => {
                write!(f, "{action} does not possess colour {colour}")
            }
            LockError::ActionNotActive { action } => {
                write!(f, "{action} is not active")
            }
        }
    }
}

impl Error for LockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let denied = LockError::Denied {
            object: ObjectId::from_raw(4),
            reason: LockDenied::ConflictingHolder {
                holder: ActionId::from_raw(2),
                mode: LockMode::Write,
            },
        };
        let text = denied.to_string();
        assert!(text.contains("O4"));
        assert!(text.contains("A2"));
        assert!(text.contains("write"));
    }

    #[test]
    fn wrong_write_colour_display() {
        let reason = LockDenied::WrongWriteColour {
            existing: Colour::from_index(0),
            requested: Colour::from_index(1),
        };
        let text = reason.to_string();
        assert!(text.contains("c0"));
        assert!(text.contains("c1"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ColourError>();
        assert_error::<LockDenied>();
        assert_error::<LockError>();
    }
}
