//! Fundamental vocabulary types for the *chroma* multi-coloured action
//! system.
//!
//! This crate holds the identifiers and small value types shared by every
//! other chroma crate: [`ActionId`], [`ObjectId`], [`NodeId`], the colour
//! machinery ([`Colour`], [`ColourSet`], [`ColourUniverse`]) and the lock
//! vocabulary ([`LockMode`]).
//!
//! The terminology follows Shrivastava & Wheater, *"Implementing
//! Fault-Tolerant Distributed Applications Using Objects and
//! Multi-Coloured Actions"* (ICDCS 1990): an **action** is an atomic
//! transaction; a **colour** is an attribute statically assigned to an
//! action; actions of the same colour behave towards each other like
//! conventional atomic actions, but not necessarily towards actions of
//! other colours.
//!
//! # Examples
//!
//! ```
//! use chroma_base::{ColourUniverse, ColourSet};
//!
//! let universe = ColourUniverse::new();
//! let red = universe.colour("red");
//! let blue = universe.colour("blue");
//! let both = ColourSet::from_iter([red, blue]);
//! assert!(both.contains(red));
//! assert_eq!(both.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod colour;
mod error;
mod id;
mod mode;

pub use colour::{Colour, ColourSet, ColourSetIter, ColourUniverse, MAX_LIVE_COLOURS};
pub use error::{ColourError, LockDenied, LockError};
pub use id::{ActionId, NodeId, ObjectId};
pub use mode::LockMode;
