//! Property tests for the colour bitset algebra and universe recycling.

use chroma_base::{Colour, ColourSet, ColourUniverse, MAX_LIVE_COLOURS};
use proptest::prelude::*;

fn colour_vec() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..MAX_LIVE_COLOURS, 0..16)
}

fn set_of(indices: &[usize]) -> ColourSet {
    indices.iter().map(|&i| Colour::from_index(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn union_intersection_distribute(a in colour_vec(), b in colour_vec(), c in colour_vec()) {
        let (a, b, c) = (set_of(&a), set_of(&b), set_of(&c));
        // a ∩ (b ∪ c) == (a ∩ b) ∪ (a ∩ c)
        prop_assert_eq!(
            a.intersection(b.union(c)),
            a.intersection(b).union(a.intersection(c))
        );
        // a \ (b ∪ c) == (a \ b) \ c
        prop_assert_eq!(a.minus(b.union(c)), a.minus(b).minus(c));
    }

    #[test]
    fn subset_and_intersects_agree(a in colour_vec(), b in colour_vec()) {
        let (sa, sb) = (set_of(&a), set_of(&b));
        prop_assert_eq!(sa.is_subset_of(sb), sa.minus(sb).is_empty());
        prop_assert_eq!(sa.intersects(sb), !sa.intersection(sb).is_empty());
        prop_assert_eq!(sa.union(sb).len() + sa.intersection(sb).len(), sa.len() + sb.len());
    }

    #[test]
    fn iteration_round_trips(a in colour_vec()) {
        let set = set_of(&a);
        let rebuilt: ColourSet = set.iter().collect();
        prop_assert_eq!(rebuilt, set);
        // Iteration is strictly increasing by index.
        let indices: Vec<usize> = set.iter().map(Colour::index).collect();
        prop_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(indices.len(), set.len());
    }

    #[test]
    fn with_without_are_inverse(a in colour_vec(), extra in 0..MAX_LIVE_COLOURS) {
        let set = set_of(&a);
        let colour = Colour::from_index(extra);
        if !set.contains(colour) {
            prop_assert_eq!(set.with(colour).without(colour), set);
        }
        prop_assert!(!set.without(colour).contains(colour));
        prop_assert!(set.with(colour).contains(colour));
    }

    #[test]
    fn universe_recycles_released_slots(churn in 1usize..200) {
        let universe = ColourUniverse::new();
        // Keep a persistent base colour and churn anonymous ones far
        // beyond the 64-slot budget: recycling must hold live count low.
        let base = universe.colour("base");
        for _ in 0..churn {
            let c1 = universe.fresh().expect("fresh");
            let c2 = universe.fresh().expect("fresh");
            prop_assert_ne!(c1, c2);
            prop_assert_ne!(c1, base);
            universe.release(c1);
            universe.release(c2);
        }
        prop_assert!(universe.live_count() <= 2);
        prop_assert_eq!(universe.colour("base"), base);
    }
}
