//! MVCC snapshot torture: concurrent Zipfian writers racing long
//! read-only snapshot scans, across crash/recover schedules, with the
//! full event trace audited clean under R1–R10 — plus one negative
//! trace per R10 sub-rule proving the auditor actually bites.
//!
//! Seeded like the rest of the torture tooling: `CHROMA_TORTURE_SEED`
//! selects the run, so a failing CI seed reproduces locally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use chroma_base::{ActionId, Colour, ObjectId};
use chroma_core::Runtime;
use chroma_load::Zipf;
use chroma_obs::{
    Event, EventBus, EventKind, MemorySink, Obs, Observable, TraceAuditor, Violation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn torture_seed() -> u64 {
    std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// SplitMix64 step — derives independent sub-seeds from the run seed.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const KEYS: u64 = 128;
const WRITERS: usize = 4;
const READERS: usize = 2;
const COMMITS_PER_WRITER: u64 = 300;
const ROUNDS: u64 = 3;

/// The torture centrepiece: rounds of concurrent Zipf-skewed
/// increments racing full-table snapshot scans, a crash/recover
/// between rounds, and the whole trace audited clean at the end.
///
/// Each scan asserts two MVCC guarantees directly:
/// * **repeatability** — re-reading a key inside one snapshot returns
///   the identical value, no matter what writers commit meanwhile;
/// * **monotonicity** — writers only increment, so a later snapshot
///   must see per-key values at least as large as an earlier one from
///   the same reader thread.
#[test]
fn zipfian_writers_vs_snapshot_scans_survive_crashes_and_audit_clean() {
    let seed = torture_seed();
    let rt = Runtime::builder().build();
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(2_000_000));
    bus.add_sink(sink.clone());
    rt.install_obs(Obs::new(bus));

    let objects: Arc<Vec<ObjectId>> = Arc::new(
        (0..KEYS)
            .map(|_| rt.create_object(&0u64).expect("create key"))
            .collect(),
    );

    for round in 0..ROUNDS {
        let barrier = Arc::new(Barrier::new(WRITERS + READERS));
        let writers_done = Arc::new(AtomicU64::new(0));

        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let rt = rt.clone();
                let objects = Arc::clone(&objects);
                let barrier = Arc::clone(&barrier);
                let writers_done = Arc::clone(&writers_done);
                let zipf_seed = splitmix(seed, round * 100 + w as u64);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(zipf_seed);
                    let zipf = Zipf::new(KEYS, 0.9);
                    barrier.wait();
                    for _ in 0..COMMITS_PER_WRITER {
                        let object = objects[zipf.sample(&mut rng) as usize];
                        rt.atomic(|a| a.modify(object, |v: &mut u64| *v += 1))
                            .expect("writer commit");
                    }
                    writers_done.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();

        let reader_handles: Vec<_> = (0..READERS)
            .map(|_| {
                let rt = rt.clone();
                let objects = Arc::clone(&objects);
                let barrier = Arc::clone(&barrier);
                let writers_done = Arc::clone(&writers_done);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut floor = vec![0u64; KEYS as usize];
                    // Scan until every writer finished, then once more so
                    // the final frontier is observed too.
                    let mut last_pass = false;
                    loop {
                        let snap = rt.begin_read_only();
                        for (i, &object) in objects.iter().enumerate() {
                            let v: u64 = snap.read(object).expect("snapshot read");
                            let again: u64 = snap.read(object).expect("snapshot re-read");
                            assert_eq!(v, again, "snapshot read not repeatable");
                            assert!(
                                v >= floor[i],
                                "snapshot went backwards: key {i} was {} now {v}",
                                floor[i]
                            );
                            floor[i] = v;
                        }
                        snap.end();
                        if last_pass {
                            break;
                        }
                        last_pass = writers_done.load(Ordering::Relaxed) == WRITERS as u64;
                    }
                    floor.iter().sum::<u64>()
                })
            })
            .collect();

        for h in writer_handles {
            h.join().expect("writer thread");
        }
        let mut scanned_totals = Vec::new();
        for h in reader_handles {
            scanned_totals.push(h.join().expect("reader thread"));
        }
        // The last scan ran after every writer committed, so it must
        // have observed the full round's increments over all rounds so
        // far.
        let expected = (round + 1) * WRITERS as u64 * COMMITS_PER_WRITER;
        for total in scanned_totals {
            assert_eq!(total, expected, "final scan missed committed increments");
        }

        // Crash between rounds — all threads joined first, so no
        // in-flight snapshot read straddles the NodeCrash event.
        rt.crash_and_recover();
        let snap = rt.begin_read_only();
        let total: u64 = objects.iter().map(|&o| snap.read::<u64>(o).unwrap()).sum();
        snap.end();
        assert_eq!(total, expected, "committed increments lost in crash");
    }

    assert_eq!(sink.dropped(), 0, "trace truncated; grow the sink");
    let events = sink.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SnapshotRead { .. })),
        "torture run produced no snapshot reads"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::VersionPublish { .. })),
        "torture run published no versions"
    );
    let report = TraceAuditor::audit_events(&events);
    assert!(report.is_clean(), "seed {seed}: {report}");
}

#[test]
fn crash_kills_open_snapshots() {
    let rt = Runtime::builder().build();
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());
    rt.install_obs(Obs::new(bus));

    let o = rt.create_object(&7u64).unwrap();
    let snap = rt.begin_read_only();
    assert_eq!(snap.read::<u64>(o).unwrap(), 7);
    assert_eq!(rt.live_snapshot_count(), 1);

    rt.crash_and_recover();
    assert_eq!(rt.live_snapshot_count(), 0);
    assert!(
        matches!(
            snap.read::<u64>(o),
            Err(chroma_core::ActionError::NotActive(_))
        ),
        "snapshot survived the crash"
    );
    drop(snap); // the scope's drop must not double-report the action

    // Committed state survived; a fresh snapshot serves it.
    let fresh = rt.begin_read_only();
    assert_eq!(fresh.read::<u64>(o).unwrap(), 7);
    fresh.end();

    assert_eq!(sink.dropped(), 0);
    let report = TraceAuditor::audit_events(&sink.events());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn gc_never_reclaims_reachable_versions_and_bounds_chains() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0u64).unwrap();

    // Pin the base with a long-lived snapshot, then write through
    // several automatic GC cycles (one fires every 64 stamped commits).
    let pinned = rt.begin_read_only();
    for _ in 0..200 {
        rt.atomic(|a| a.modify(o, |v: &mut u64| *v += 1)).unwrap();
    }
    rt.version_gc();
    assert_eq!(
        pinned.read::<u64>(o).unwrap(),
        0,
        "GC reclaimed a version a live snapshot needed"
    );
    assert_eq!(rt.read_committed::<u64>(o).unwrap(), 200);

    // Closing the snapshot unpins history: the next sweep keeps only
    // the newest version.
    pinned.end();
    rt.version_gc();
    assert_eq!(rt.version_chain_len(o), 1, "chain not bounded after GC");
    let fresh = rt.begin_read_only();
    assert_eq!(fresh.read::<u64>(o).unwrap(), 200);
    fresh.end();
}

// --- R10 negative traces: one per sub-rule -------------------------

fn ev(kind: EventKind) -> Event {
    Event::at(0, kind)
}

/// R10a: a snapshot read that serves an *older* version than the
/// newest one visible at the snapshot's stamps must be flagged.
#[test]
fn auditor_flags_stale_snapshot_read() {
    let snap = ActionId::from_raw(1);
    let o = ObjectId::from_raw(9);
    let c = Colour::from_index(0);
    let trace = vec![
        ev(EventKind::VersionPublish {
            object: o,
            colour: c,
            stamp: 1,
        }),
        ev(EventKind::VersionPublish {
            object: o,
            colour: c,
            stamp: 2,
        }),
        ev(EventKind::ActionBegin {
            action: snap,
            parent: None,
            colours: 0,
        }),
        ev(EventKind::SnapshotOpen {
            action: snap,
            colour: c,
            stamp: 2,
        }),
        ev(EventKind::SnapshotRead {
            action: snap,
            object: o,
            colour: c,
            stamp: 1, // stale: stamp 2 is visible
        }),
        ev(EventKind::ActionCommit { action: snap }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::SnapshotReadNotNewest {
            served: 1,
            expected: 2,
            ..
        }]
    ));
}

/// R10a (future-read side): serving a version *beyond* the captured
/// stamp breaks snapshot isolation and must be flagged.
#[test]
fn auditor_flags_snapshot_read_beyond_its_stamp() {
    let snap = ActionId::from_raw(1);
    let o = ObjectId::from_raw(9);
    let c = Colour::from_index(0);
    let trace = vec![
        ev(EventKind::VersionPublish {
            object: o,
            colour: c,
            stamp: 1,
        }),
        ev(EventKind::ActionBegin {
            action: snap,
            parent: None,
            colours: 0,
        }),
        ev(EventKind::SnapshotOpen {
            action: snap,
            colour: c,
            stamp: 1,
        }),
        ev(EventKind::VersionPublish {
            object: o,
            colour: c,
            stamp: 2,
        }),
        ev(EventKind::SnapshotRead {
            action: snap,
            object: o,
            colour: c,
            stamp: 2, // beyond the captured frontier
        }),
        ev(EventKind::ActionCommit { action: snap }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(matches!(
        report.violations.as_slice(),
        [Violation::SnapshotReadNotNewest {
            served: 2,
            expected: 1,
            ..
        }]
    ));
}

/// R10b: a snapshot action appearing in lock traffic must be flagged —
/// the whole point of declared read-only actions is never touching the
/// lock table.
#[test]
fn auditor_flags_snapshot_reader_in_lock_traffic() {
    let snap = ActionId::from_raw(1);
    let o = ObjectId::from_raw(9);
    let c = Colour::from_index(0);
    let trace = vec![
        ev(EventKind::ActionBegin {
            action: snap,
            parent: None,
            colours: 0,
        }),
        ev(EventKind::SnapshotOpen {
            action: snap,
            colour: c,
            stamp: 0,
        }),
        ev(EventKind::LockRequest {
            action: snap,
            object: o,
            colour: c,
            mode: chroma_base::LockMode::Read,
        }),
        ev(EventKind::ActionCommit { action: snap }),
    ];
    let report = TraceAuditor::audit_events(&trace);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SnapshotReaderLocks { .. })),
        "{report}"
    );
}
