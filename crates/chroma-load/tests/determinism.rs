//! The harness determinism contract: for one seed, the generated load
//! is byte-identical across independently constructed generators — the
//! Zipf key draws, the kind/class mix choices, and the arrival-ramp
//! schedule. (Execution *timing* is real and therefore not covered;
//! only the offered load is.)
//!
//! The seed honours `CHROMA_TORTURE_SEED` like the rest of the torture
//! tooling, so a failing CI seed reproduces locally with the same
//! variable.

use chroma_load::{LoadSpec, PhaseMode, Scale, Workload};

fn torture_seed() -> u64 {
    std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[test]
fn same_seed_yields_byte_identical_load() {
    let seed = torture_seed();
    let a = LoadSpec {
        seed,
        scale: Scale::Smoke,
    };
    let b = LoadSpec {
        seed,
        scale: Scale::Smoke,
    };
    for (pa, pb) in a.phases().iter().zip(b.phases().iter()) {
        // Two generators built from scratch, drained independently.
        // Compare a prefix large enough to cover every mix branch but
        // cheap enough for CI.
        let n = pa.ops.min(20_000);
        let bytes_a = pa.workload().encode_ops(n);
        let bytes_b = pb.workload().encode_ops(n);
        assert_eq!(
            bytes_a, bytes_b,
            "phase {} diverged between identically seeded generators",
            pa.name
        );
        // Arrival schedules are derived, not sampled, but they are part
        // of the offered load: compare them too.
        if let (PhaseMode::Open(ra), PhaseMode::Open(rb)) = (&pa.mode, &pb.mode) {
            assert_eq!(ra.encode(), rb.encode(), "ramp diverged");
            assert_eq!(ra.arrival_offsets_us(), rb.arrival_offsets_us());
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let seed = torture_seed();
    let a = LoadSpec {
        seed,
        scale: Scale::Smoke,
    };
    let b = LoadSpec {
        seed: seed.wrapping_add(1),
        scale: Scale::Smoke,
    };
    let mut any_diff = false;
    for (pa, pb) in a.phases().iter().zip(b.phases().iter()) {
        if pa.workload().encode_ops(2_000) != pb.workload().encode_ops(2_000) {
            any_diff = true;
        }
    }
    assert!(any_diff, "different run seeds produced identical load");
}

#[test]
fn op_sequence_is_stable_across_reconstruction() {
    // take_ops must consume the generator exactly like encode_ops:
    // interleaving the two views of the same seeded stream stays
    // aligned op-for-op.
    let spec = LoadSpec {
        seed: torture_seed(),
        scale: Scale::Smoke,
    };
    let phase = &spec.phases()[0];
    let ops = phase.workload().take_ops(1_000);
    let mut encoded = Vec::new();
    for op in &ops {
        op.encode(&mut encoded);
    }
    assert_eq!(encoded, phase.workload().encode_ops(1_000));
    // Sequence numbers are the op's index in the stream.
    for (i, op) in ops.iter().enumerate() {
        assert_eq!(op.seq, i as u64);
    }
}
