//! Seeded Zipfian key sampling with configurable skew.
//!
//! The generator follows Gray et al.'s classic "Quickly Generating
//! Billion-Record Synthetic Databases" construction (the one YCSB
//! uses): ranks are drawn from the Zipf CDF by inversion using the
//! precomputed harmonic sums, so a draw is O(1) after an O(n) setup.
//! Rank 0 is the hottest key; `theta = 0` degenerates to the uniform
//! distribution and `theta → 1` concentrates almost all probability on
//! a handful of ranks.
//!
//! Hot ranks are *scattered* across the key space with a Fibonacci
//! multiplicative hash before being returned, so "the hottest keys"
//! are not also "adjacent keys" — adjacency would couple hot-key skew
//! with whatever locality the executor's object layout has.

use rand::rngs::StdRng;
use rand::Rng;

/// A seeded Zipfian sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds a sampler over `n` keys with skew `theta`.
    ///
    /// # Panics
    ///
    /// If `n == 0` or `theta` is outside `[0, 1)` (the inversion
    /// constants diverge at exactly 1; use 0.99 for "very hot").
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty key space");
        assert!(
            (0.0..1.0).contains(&theta),
            "zipf theta must be in [0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of keys.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one Zipf-distributed *rank* (0 = hottest).
    #[must_use]
    pub fn sample_rank(&self, rng: &mut StdRng) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) && self.n >= 2 {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws one key: a Zipf rank scattered over `0..n` so hot keys are
    /// spread across the key space.
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        scatter(self.sample_rank(rng), self.n)
    }
}

/// The truncated harmonic sum `Σ_{i=1..n} 1/i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// Deterministically scatters a rank over `0..n` (Fibonacci hash, then
/// modulo). Not a permutation for general `n`, but collision-sparse and
/// stable across runs, which is all key scattering needs.
#[must_use]
pub fn scatter(rank: u64, n: u64) -> u64 {
    rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(16, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [0u64; 16];
        for _ in 0..16_000 {
            seen[z.sample_rank(&mut rng) as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 600), "{seen:?}");
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1 << 16, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hot = 0u64;
        const DRAWS: u64 = 20_000;
        for _ in 0..DRAWS {
            if z.sample_rank(&mut rng) < 64 {
                hot += 1;
            }
        }
        // With theta = 0.9 the first 64 of 65536 ranks carry ~28% of
        // the mass (harmonic-sum ratio); uniform would give ~0.1%.
        assert!(hot > DRAWS / 5, "hot draws: {hot}/{DRAWS}");
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(1024, 0.7);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        for theta in [0.0, 0.5, 0.99] {
            let z = Zipf::new(37, theta);
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..5_000 {
                assert!(z.sample(&mut rng) < 37);
            }
        }
    }

    #[test]
    #[should_panic(expected = "theta must be in [0, 1)")]
    fn theta_one_rejected() {
        let _ = Zipf::new(10, 1.0);
    }
}
