//! End-to-end load harness: seeded mixed-colour traffic against the
//! full `Runtime` + `DiskBackend` stack and the §4 applications.
//!
//! Runs the [`LoadSpec`] phase plan (closed-loop KV at two skews, an
//! open-loop arrival ramp, billing and bulletin-board app phases),
//! traces every event through a `JsonlSink`, then re-reads the trace to
//! attribute latency via the critical-path profiler and to re-check the
//! R1–R10 invariants with the trace auditor.
//!
//! Results go to `BENCH_load.json` (override with `--out <path>`) in
//! the unified BENCH schema (DESIGN.md §5.3): one run object per phase
//! with per-class p50/p95/p99, plus `critical_path`, `audit` and `slo`
//! top-level fields.
//!
//! Exits non-zero when:
//!
//! * a closed-loop class with enough samples has
//!   `p99 > max(100 × p50, 500 ms)` — reads whose healthy p99 is a few
//!   group-commit fsyncs behind hot-key writers carry a huge p99/p50
//!   ratio by design, so the gate convicts orders of magnitude, not
//!   noise (the latency histogram's log2 buckets quantise p99 in 2×
//!   steps);
//! * an open-loop phase's worst p99 exceeds 5 s — the stack collapsed
//!   under the offered ramp (healthy runs sit around 100 ms; the
//!   margin absorbs transient scheduler/disk stalls on busy hosts);
//! * any phase's error rate exceeds 0.5 %;
//! * the trace audit reports any R1–R10 violation.
//!
//! `--smoke` (the CI configuration) runs ~116k actions; the default
//! full profile runs ~1.16M. The seed comes from `--seed` or
//! `CHROMA_TORTURE_SEED` (default 42).

use std::io::BufWriter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chroma_bench::report::{Obj, Report};
use chroma_core::{DiskBackend, Runtime};
use chroma_load::{
    run_closed, run_open, ActionClass, BillingExecutor, BulletinExecutor, Executor, KvExecutor,
    LoadSpec, Op, OpKind, PhaseMode, PhaseResult, PhaseSpec, Scale, Target, Workload,
};
use chroma_obs::{
    Event, EventBus, FlightRecorder, JsonlSink, Phase, SpanForest, Summary, TraceAuditor, Watchdog,
};

/// Closed-loop tail SLO: p99 must stay within this multiple of p50.
/// The histogram's log2 buckets quantise p99 in 2× steps, and reads
/// that queue behind hot-key writers legitimately wait out several
/// group-commit fsyncs (a 60×+ p99/p50 ratio on a healthy stack under
/// the write-heavy phase's deliberate skew), so the ratio is an
/// order-of-magnitude gate, not a regression detector.
const TAIL_RATIO: f64 = 100.0;

/// Minimum closed-loop p99 ceiling (µs): classes with tiny medians are
/// gated on this absolute bound instead of `TAIL_RATIO × p50`. Healthy
/// smoke runs measure ≤ ~130 ms worst-class p99; a leaked lock rides
/// the 10 s timeout straight through 500 ms.
const TAIL_MIN_CEILING_US: f64 = 500_000.0;

/// Open-loop ceiling (µs): queueing delay beyond this means the stack
/// fell over under the offered rate instead of riding the ramp.
/// Healthy smoke runs measure 30–130 ms; a single transient ~1 s stall
/// at the ramp's 2000 ops/s peak queues seconds of backlog into the
/// tail, so the ceiling sits well above that noise while still
/// convicting sustained collapse (a leaked lock rides the 10 s
/// timeout straight through it).
const OPEN_P99_CEILING_US: u64 = 5_000_000;

/// Classes with fewer samples than this are reported but not gated.
const SLO_MIN_SAMPLES: u64 = 500;

/// Highest tolerated per-phase error rate (post-retry).
const MAX_ERROR_RATE: f64 = 0.005;

fn build_executor(
    rt: &Arc<Runtime>,
    phase: &PhaseSpec,
) -> Result<Box<dyn Executor>, chroma_core::ActionError> {
    Ok(match phase.target {
        Target::Kv => Box::new(KvExecutor::new(rt.clone(), phase.mix.keys)?),
        Target::Billing => Box::new(BillingExecutor::new(rt.clone(), phase.mix.keys)?),
        Target::Bulletin => Box::new(BulletinExecutor::new(rt.clone(), phase.mix.keys)?),
    })
}

fn run_phase(rt: &Arc<Runtime>, phase: &PhaseSpec, threads_cap: usize) -> PhaseResult {
    let exec = build_executor(rt, phase).expect("executor setup");
    let mut workload = phase.workload();
    let ops = workload.take_ops(phase.ops);
    let threads = phase.threads.min(threads_cap).max(1);
    match &phase.mode {
        PhaseMode::Closed => run_closed(phase.name, exec.as_ref(), &ops, threads),
        PhaseMode::Open(ramp) => {
            let arrivals = ramp.arrival_offsets_us();
            run_open(phase.name, exec.as_ref(), &ops, &arrivals, threads)
        }
    }
}

fn classes_obj(result: &PhaseResult) -> Obj {
    let mut classes = Obj::new();
    for (label, hist) in &result.classes {
        let s = hist.summary();
        classes = classes.field(
            label,
            Obj::new()
                .field("count", s.count)
                .field("mean_us", s.mean_us)
                .field("p50_us", s.p50_us)
                .field("p95_us", s.p95_us)
                .field("p99_us", s.p99_us)
                .field("max_us", s.max_us),
        );
    }
    classes
}

fn phase_run_obj(result: &PhaseResult) -> Obj {
    Obj::new()
        .field("name", result.name.as_str())
        .field("mode", result.mode)
        .field("threads", result.threads)
        .field("ops", result.ops)
        .field("errors", result.errors)
        .field("error_rate", result.error_rate())
        .field("elapsed_ms", result.elapsed.as_secs_f64() * 1e3)
        .field("ops_per_sec", result.ops_per_sec())
        .field("classes", classes_obj(result))
}

/// Per-class SLO gates over all phases; returns human-readable
/// violations.
fn check_slos(results: &[PhaseResult]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in results {
        if r.error_rate() > MAX_ERROR_RATE {
            violations.push(format!(
                "{}: error rate {:.3}% exceeds {:.1}%",
                r.name,
                r.error_rate() * 100.0,
                MAX_ERROR_RATE * 100.0
            ));
        }
        for (label, hist) in &r.classes {
            if hist.count() < SLO_MIN_SAMPLES {
                continue;
            }
            let s = hist.summary();
            match r.mode {
                "closed" => {
                    let ceiling = (TAIL_RATIO * s.p50_us).max(TAIL_MIN_CEILING_US);
                    if s.p99_us > ceiling {
                        violations.push(format!(
                            "{}/{}: p99 {:.0}µs exceeds {:.0}µs (max(100×p50, {:.0}µs))",
                            r.name, label, s.p99_us, ceiling, TAIL_MIN_CEILING_US
                        ));
                    }
                }
                _ => {
                    if s.p99_us > OPEN_P99_CEILING_US as f64 {
                        violations.push(format!(
                            "{}/{}: open-loop p99 {:.0}µs exceeds {}µs ceiling",
                            r.name, label, s.p99_us, OPEN_P99_CEILING_US
                        ));
                    }
                }
            }
        }
    }
    violations
}

/// Parses the JSONL trace back into events (panics on a corrupt line —
/// the harness wrote it moments ago, so corruption is a bug).
fn read_trace(path: &std::path::Path) -> Vec<Event> {
    let text = std::fs::read_to_string(path).expect("read trace");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Event::from_json_line(l).expect("parse trace line"))
        .collect()
}

fn critical_path_obj(events: &[Event]) -> Obj {
    let forest = SpanForest::build(events);
    let report = forest.critical_path(events);
    let colours: Vec<Obj> = report
        .colours
        .iter()
        .map(|(colour, row)| {
            let mut o = Obj::new()
                .field("colour", u64::from(*colour))
                .field("actions", row.actions)
                .field("total_us", row.total_us);
            for (i, name) in Phase::NAMES.iter().enumerate() {
                o = o.field(&format!("{name}_us"), row.phases[i]);
            }
            o
        })
        .collect();
    Obj::new().field("colours", colours).field(
        "txns",
        Obj::new()
            .field("count", report.txns.count)
            .field("total_us", report.txns.total_us),
    )
}

/// Watchdog-overhead gate: p99 with the watchdog attached must stay
/// within this multiple of the p99 without it.
const OVERHEAD_RATIO_CEILING: f64 = 1.10;

/// Absolute slack (µs) added to the overhead ceiling so scheduler
/// jitter on sub-millisecond tails cannot fail the ratio gate
/// spuriously.
const OVERHEAD_SLACK_US: f64 = 250.0;

/// Interleaved measurement rounds per arm.
const OVERHEAD_ROUNDS: usize = 16;

/// Closed-loop KV ops per arm per round.
const OVERHEAD_OPS_PER_ROUND: u64 = 250;

/// Measures the watchdog + recorder cost on the closed-loop KV path:
/// twin disk-backed runtimes — one with watchdog and flight recorder
/// attached from birth, one with only the trace sink — run identical
/// op sequences in interleaved rounds, alternating which arm goes
/// first each round so neither systematically inherits the other's
/// fsync backlog. The disk path's p99 is fsync-dominated and fsync
/// tails are wildly noisy on shared hosts, so a pooled p99 flakes;
/// instead each arm's p99 is the *median of its per-round p99s* — an
/// outlier round (a machine-wide stall, which hits both arms) moves
/// one of sixteen round estimates, not the gate. Exact per-round p99s
/// come from the raw samples rather than the log2-bucketed
/// histograms. Returns the report object and the SLO violation, if
/// the gate failed.
///
/// The measurement runs right after the main phases have dirtied
/// hundreds of megabytes of trace and WAL, so it first waits for that
/// writeback to drain (`sync`), and a failed gate re-measures once on
/// fresh stores before convicting — a real regression fails both
/// attempts, a device-level stall does not.
fn measure_watchdog_overhead(scratch: &std::path::Path) -> (Obj, Option<String>) {
    let _ = std::process::Command::new("sync").status();
    let (obj, violation) = measure_watchdog_overhead_once(scratch, "a");
    if violation.is_none() {
        return (obj.field("attempts", 1u64), violation);
    }
    eprintln!("load_bench: watchdog overhead gate failed, re-measuring once on fresh stores");
    let _ = std::process::Command::new("sync").status();
    let (obj, violation) = measure_watchdog_overhead_once(scratch, "b");
    (obj.field("attempts", 2u64), violation)
}

/// One full overhead measurement; `attempt` keys the scratch files so
/// a retry starts on fresh stores.
fn measure_watchdog_overhead_once(
    scratch: &std::path::Path,
    attempt: &str,
) -> (Obj, Option<String>) {
    let build_arm = |tag: &str, monitored: bool| {
        let bus = Arc::new(EventBus::new());
        let sink = Arc::new(JsonlSink::new(BufWriter::new(
            std::fs::File::create(scratch.join(format!("overhead-{attempt}-{tag}.jsonl")))
                .expect("create overhead trace"),
        )));
        bus.add_sink(sink);
        if monitored {
            let recorder = FlightRecorder::attach(&bus, 65_536);
            recorder.set_auto_dump(Some(scratch.join("overhead-flight.jsonl")));
            Watchdog::attach(&bus);
        }
        let backend = Arc::new(
            DiskBackend::open(scratch.join(format!("overhead-{attempt}-{tag}-store")))
                .expect("open overhead store"),
        );
        let rt = Arc::new(Runtime::builder().backend(backend).obs(bus.clone()).build());
        let exec = KvExecutor::new(rt.clone(), 64).expect("kv executor");
        (bus, rt, exec)
    };
    let (_bus_with, _rt_with, exec_with) = build_arm("with", true);
    let (_bus_without, _rt_without, exec_without) = build_arm("without", false);

    // The same deterministic closed-loop KV mix for both arms: reads,
    // writes and snapshot scans (snapshot reads exercise the
    // watchdog's R10 path, its most stateful rule).
    let ops: Vec<Op> = (0..OVERHEAD_OPS_PER_ROUND)
        .map(|seq| {
            let (class, kind) = match seq % 4 {
                0 | 2 => (ActionClass::Serializing, OpKind::Read),
                1 => (ActionClass::Serializing, OpKind::Write),
                _ => (ActionClass::Snapshot, OpKind::Read),
            };
            Op {
                seq,
                class,
                kind,
                key: seq % 64,
                aux: (seq + 1) % 64,
            }
        })
        .collect();

    let run_arm = |exec: &KvExecutor, samples: &mut Vec<Duration>| {
        for op in &ops {
            let begun = Instant::now();
            exec.execute(op).expect("overhead op");
            samples.push(begun.elapsed());
        }
    };
    // warm both stores (object creation, first fsyncs) outside the
    // measured window
    let mut warmup = Vec::new();
    run_arm(&exec_with, &mut warmup);
    run_arm(&exec_without, &mut warmup);

    let mut with = Vec::new();
    let mut without = Vec::new();
    let mut round_p99s_with = Vec::new();
    let mut round_p99s_without = Vec::new();
    for round in 0..OVERHEAD_ROUNDS {
        let mut round_with = Vec::new();
        let mut round_without = Vec::new();
        if round % 2 == 0 {
            run_arm(&exec_without, &mut round_without);
            run_arm(&exec_with, &mut round_with);
        } else {
            run_arm(&exec_with, &mut round_with);
            run_arm(&exec_without, &mut round_without);
        }
        round_p99s_with.push(Summary::from_durations(&round_with).p99_us);
        round_p99s_without.push(Summary::from_durations(&round_without).p99_us);
        with.append(&mut round_with);
        without.append(&mut round_without);
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let p99_with = median(&mut round_p99s_with);
    let p99_without = median(&mut round_p99s_without);
    let s_with = Summary::from_durations(&with);
    let s_without = Summary::from_durations(&without);
    let ceiling = p99_without * OVERHEAD_RATIO_CEILING + OVERHEAD_SLACK_US;
    let pass = p99_with <= ceiling;
    let ratio = if p99_without > 0.0 {
        p99_with / p99_without
    } else {
        1.0
    };
    eprintln!(
        "load_bench: watchdog overhead p99 {p99_with:.0}µs with vs {p99_without:.0}µs \
         without (median of {OVERHEAD_ROUNDS} round p99s; ratio {ratio:.3}, \
         ceiling {ceiling:.0}µs) — {}",
        if pass { "pass" } else { "FAIL" }
    );
    let obj = Obj::new()
        .field("samples_per_arm", with.len() as u64)
        .field("rounds", OVERHEAD_ROUNDS as u64)
        .field("p50_with_us", s_with.p50_us)
        .field("p50_without_us", s_without.p50_us)
        .field("p99_with_us", p99_with)
        .field("p99_without_us", p99_without)
        .field("pooled_p99_with_us", s_with.p99_us)
        .field("pooled_p99_without_us", s_without.p99_us)
        .field("ratio", ratio)
        .field("ceiling_us", ceiling)
        .field("pass", pass);
    let violation = (!pass).then(|| {
        format!(
            "watchdog overhead: KV p99 {p99_with:.0}µs with watchdog exceeds \
             {ceiling:.0}µs (1.10× the {p99_without:.0}µs without + \
             {OVERHEAD_SLACK_US:.0}µs slack)",
        )
    });
    (obj, violation)
}

fn main() {
    let mut scale = Scale::Full;
    let mut out_path = "BENCH_load.json".to_owned();
    let mut trace_path: Option<String> = None;
    let mut dump_path: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut threads_cap = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::Smoke,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            "--dump" => dump_path = Some(args.next().expect("--dump needs a path")),
            "--seed" => {
                seed = Some(
                    args.next()
                        .expect("--seed needs a number")
                        .parse()
                        .expect("--seed needs a number"),
                );
            }
            "--threads" => {
                threads_cap = args
                    .next()
                    .expect("--threads needs a number")
                    .parse()
                    .expect("--threads needs a number");
            }
            other => {
                eprintln!(
                    "usage: load_bench [--smoke] [--out <path>] [--trace <path>] \
                     [--dump <path>] [--seed <n>] [--threads <n>]"
                );
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let seed = seed.unwrap_or_else(|| {
        std::env::var("CHROMA_TORTURE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42)
    });
    let spec = LoadSpec { seed, scale };

    // Everything lives in a per-run scratch dir: the disk store, and
    // the trace too unless --trace pinned it somewhere.
    let scratch = std::env::temp_dir().join(format!("chroma_load_{}_{seed}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let data_dir = scratch.join("store");
    let trace_file = trace_path
        .as_ref()
        .map_or_else(|| scratch.join("trace.jsonl"), std::path::PathBuf::from);

    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(JsonlSink::new(BufWriter::new(
        std::fs::File::create(&trace_file).expect("create trace file"),
    )));
    bus.add_sink(sink.clone());
    // The online monitors run for the whole load: the watchdog
    // re-checks R1–R4/R9/R10 in-line (the run fails on any online
    // violation), the flight recorder keeps the newest events for a
    // post-mortem dump on crash, violation, or SLO failure.
    let recorder = FlightRecorder::attach(&bus, 65_536);
    let dump_file = dump_path
        .as_ref()
        .map_or_else(|| scratch.join("flight.jsonl"), std::path::PathBuf::from);
    recorder.set_auto_dump(Some(dump_file.clone()));
    let watchdog = Watchdog::attach(&bus);
    watchdog.on_violation(|event| {
        eprintln!("load_bench: WATCHDOG {}", event.to_json_line());
    });
    let backend = Arc::new(DiskBackend::open(&data_dir).expect("open disk backend"));
    let rt = Arc::new(Runtime::builder().backend(backend).obs(bus.clone()).build());

    // Gauge ticker: periodic metrics_snapshot records in the trace,
    // the series `chroma-trace watch` tails.
    let ticker_stop = Arc::new(AtomicBool::new(false));
    let ticker = {
        let rt = rt.clone();
        let stop = ticker_stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                rt.publish_metrics_snapshot();
                std::thread::sleep(Duration::from_millis(200));
            }
            rt.publish_metrics_snapshot();
        })
    };

    eprintln!(
        "load_bench: seed {seed}, {} scale, {} ops planned, trace -> {}",
        match scale {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        },
        spec.total_ops(),
        trace_file.display()
    );

    let started = Instant::now();
    let mut results = Vec::new();
    for phase in spec.phases() {
        let phase_started = Instant::now();
        let result = run_phase(&rt, &phase, threads_cap);
        eprintln!(
            "  {}: {} ops in {:.2}s ({:.0} ops/s, {} errors)",
            result.name,
            result.ops,
            phase_started.elapsed().as_secs_f64(),
            result.ops_per_sec(),
            result.errors
        );
        results.push(result);
    }
    let elapsed = started.elapsed();
    ticker_stop.store(true, Ordering::Relaxed);
    ticker.join().expect("gauge ticker");

    // Watchdog overhead: closed-loop KV p99 with the watchdog attached
    // must stay within 1.10× of the p99 without it, measured in this
    // same run (interleaved rounds on twin runtimes).
    let (overhead_obj, overhead_violation) = measure_watchdog_overhead(&scratch);

    bus.flush();
    assert!(!sink.had_errors(), "trace sink reported write errors");

    let events = read_trace(&trace_file);
    eprintln!(
        "load_bench: {} ops in {:.2}s, {} trace events",
        results.iter().map(|r| r.ops).sum::<u64>(),
        elapsed.as_secs_f64(),
        events.len()
    );
    let audit = TraceAuditor::audit_events(&events);
    let mut violations = check_slos(&results);
    if !audit.is_clean() {
        for v in &audit.violations {
            violations.push(format!("audit: {v}"));
        }
    }
    if watchdog.violations() > 0 {
        violations.push(format!(
            "watchdog: {} online violation(s) during the load",
            watchdog.violations()
        ));
    }
    if let Some(v) = overhead_violation {
        violations.push(v);
    }

    let audit_obj = Obj::new()
        .field("events", audit.events)
        .field("violations", audit.violations.len() as u64)
        .field("clean", audit.is_clean());
    let slo_violations: Vec<chroma_bench::report::Value> =
        violations.iter().map(|v| v.as_str().into()).collect();
    let slo_obj = Obj::new()
        .field("pass", violations.is_empty())
        .field("violations", slo_violations);
    let mut report = Report::new("load_harness")
        .field("seed", seed)
        .field(
            "scale",
            match scale {
                Scale::Smoke => "smoke",
                Scale::Full => "full",
            },
        )
        .field("total_ops", results.iter().map(|r| r.ops).sum::<u64>())
        .field(
            "total_errors",
            results.iter().map(|r| r.errors).sum::<u64>(),
        )
        .field("elapsed_ms", elapsed.as_secs_f64() * 1e3)
        .field("critical_path", critical_path_obj(&events))
        .field("audit", audit_obj)
        .field(
            "watchdog",
            Obj::new()
                .field("violations", watchdog.violations())
                .field("recorder_events", recorder.len() as u64)
                .field("overhead", overhead_obj),
        )
        .field("slo", slo_obj);
    for r in &results {
        report = report.run(phase_run_obj(r));
    }
    report.write(&out_path).expect("write report");
    eprintln!("load_bench: wrote {out_path}");

    // Any failure yields a flight-recorder dump for the post-mortem
    // (auto-dump already fired on watchdog violations and crashes).
    if !violations.is_empty() {
        if let Err(e) = recorder.dump_to(&dump_file) {
            eprintln!("load_bench: flight-recorder dump failed: {e}");
        } else {
            eprintln!(
                "load_bench: flight recorder dumped {} event(s) -> {}",
                recorder.len(),
                dump_file.display()
            );
        }
    }

    // The scratch store is disposable; a pinned trace or dump lives
    // elsewhere and survives.
    drop(rt);
    let _ = std::fs::remove_dir_all(&scratch);

    if violations.is_empty() {
        eprintln!("load_bench: all SLOs met, audit clean, watchdog silent");
    } else {
        eprintln!("load_bench: FAILED —");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
