//! `chroma-load` — a seeded, deterministic end-to-end load harness
//! with latency SLOs.
//!
//! The micro-benchmarks (`lock_bench`, `commit_bench`) referee single
//! subsystems; this crate referees the *whole stack*: seeded open- and
//! closed-loop traffic generators behind a [`Workload`] trait drive
//! millions of mixed coloured actions — Zipfian hot-key skew with
//! configurable θ, a configurable read/write/structure mix across
//! serializing/glued/independent colours, and arrival-rate ramps —
//! against the real `Runtime::builder()` + `DiskBackend` stack and the
//! paper's §4 applications (`billing`, `bulletin_board`).
//!
//! The `load_bench` binary (in `src/bin/`) reports per-phase
//! throughput and per-class p50/p95/p99 latency to `BENCH_load.json`,
//! feeds the run's trace through the critical-path profiler so tail
//! latency is attributed to lock-wait/fsync/network/2PC/compute, and
//! exits non-zero when a smoke-scale SLO is violated or the R1–R10
//! trace audit fails. Every perf-oriented PR gates on it.
//!
//! Determinism contract: for a fixed seed, generated operation
//! sequences and arrival schedules are byte-identical across runs (see
//! `tests/determinism.rs`). Execution timing is, of course, not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod exec;
pub mod workload;
pub mod zipf;

pub use driver::{run_closed, run_open, PhaseResult};
pub use exec::{BillingExecutor, BulletinExecutor, Executor, KvExecutor};
pub use workload::{
    ActionClass, MixConfig, MixWorkload, Op, OpKind, RampPhase, RampSchedule, Workload,
};
pub use zipf::Zipf;

/// Which stack a phase drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Raw `Runtime` + backend over a `u64` object table.
    Kv,
    /// The §4(iii) billing ledger.
    Billing,
    /// The §4(i) bulletin board.
    Bulletin,
}

impl Target {
    /// Stable lowercase label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Target::Kv => "kv",
            Target::Billing => "billing",
            Target::Bulletin => "bulletin",
        }
    }
}

/// Closed loop, or open loop under a ramp schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhaseMode {
    /// Workers issue the next op when the previous completes.
    Closed,
    /// Ops are released at scheduled arrivals.
    Open(RampSchedule),
}

/// One phase of a load run: a seeded workload against one target in
/// one mode.
#[derive(Clone, Debug)]
pub struct PhaseSpec {
    /// Report key.
    pub name: &'static str,
    /// Stack under load.
    pub target: Target,
    /// Generator configuration.
    pub mix: MixConfig,
    /// Operations generated (for open mode this equals the schedule's
    /// total).
    pub ops: u64,
    /// Closed or open loop.
    pub mode: PhaseMode,
    /// Worker threads.
    pub threads: usize,
    /// Seed for this phase's generator, derived from the run seed.
    pub workload_seed: u64,
}

impl PhaseSpec {
    /// Builds this phase's generator.
    #[must_use]
    pub fn workload(&self) -> MixWorkload {
        MixWorkload::new(self.mix, self.workload_seed)
    }
}

/// Run scale: CI smoke or the full million-action profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~116k actions; finishes in about a minute on a few cores.
    Smoke,
    /// ~1.16M actions.
    Full,
}

/// A complete load-run specification: the phase list is a pure
/// function of `(seed, scale)`.
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Run seed (`CHROMA_TORTURE_SEED` by convention).
    pub seed: u64,
    /// Smoke or full scale.
    pub scale: Scale,
}

/// Derives a phase seed from the run seed (SplitMix64 step, so nearby
/// run seeds do not produce overlapping phase streams).
fn phase_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LoadSpec {
    /// The phase list for this spec.
    #[must_use]
    pub fn phases(&self) -> Vec<PhaseSpec> {
        let m = match self.scale {
            Scale::Smoke => 1,
            Scale::Full => 10,
        };
        // The ramp tops out below the stack's measured smoke-scale
        // capacity (~3.5k mixed ops/s at 16 threads on a dev box): the
        // open phase is meant to measure queueing under an increasing
        // but sustainable offered rate, not to demonstrate collapse.
        let ramp = RampSchedule::new(vec![
            RampPhase {
                rate_per_sec: 500,
                ops: 3_000 * m,
            },
            RampPhase {
                rate_per_sec: 1_000,
                ops: 5_000 * m,
            },
            RampPhase {
                rate_per_sec: 2_000,
                ops: 8_000 * m,
            },
        ]);
        let specs = vec![
            PhaseSpec {
                name: "closed_kv_read_heavy",
                target: Target::Kv,
                mix: MixConfig::read_heavy(4_096),
                ops: 64_000 * m,
                mode: PhaseMode::Closed,
                threads: 16,
                workload_seed: 0,
            },
            PhaseSpec {
                name: "open_kv_ramp",
                target: Target::Kv,
                mix: MixConfig::read_heavy(4_096),
                ops: ramp.total_ops(),
                mode: PhaseMode::Open(ramp),
                threads: 16,
                workload_seed: 0,
            },
            PhaseSpec {
                name: "closed_kv_write_heavy",
                target: Target::Kv,
                mix: MixConfig::write_heavy(1_024),
                ops: 16_000 * m,
                mode: PhaseMode::Closed,
                // Deliberate hot-key write contention: fewer workers
                // keep read queues behind fsync-holding writers short
                // enough that tail latency measures the stack, not the
                // queue length this harness chose.
                threads: 8,
                workload_seed: 0,
            },
            PhaseSpec {
                name: "closed_billing",
                target: Target::Billing,
                mix: MixConfig::read_heavy(512),
                ops: 10_000 * m,
                mode: PhaseMode::Closed,
                threads: 4,
                workload_seed: 0,
            },
            PhaseSpec {
                name: "closed_bulletin",
                target: Target::Bulletin,
                mix: MixConfig::read_heavy(512),
                ops: 10_000 * m,
                mode: PhaseMode::Closed,
                threads: 4,
                workload_seed: 0,
            },
            // Appended after the original five so their derived phase
            // seeds (by index) — and hence their op streams — are
            // unchanged from pre-snapshot runs.
            PhaseSpec {
                name: "closed_kv_snapshots",
                target: Target::Kv,
                mix: MixConfig::read_heavy_snapshots(4_096),
                ops: 16_000 * m,
                mode: PhaseMode::Closed,
                threads: 16,
                workload_seed: 0,
            },
        ];
        specs
            .into_iter()
            .enumerate()
            .map(|(i, mut p)| {
                p.workload_seed = phase_seed(self.seed, i as u64);
                p
            })
            .collect()
    }

    /// Total operations across all phases.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.phases().iter().map(|p| p.ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_spec_clears_the_hundred_k_floor() {
        let spec = LoadSpec {
            seed: 42,
            scale: Scale::Smoke,
        };
        assert!(
            spec.total_ops() >= 100_000,
            "smoke must generate >= 100k actions, got {}",
            spec.total_ops()
        );
        let full = LoadSpec {
            seed: 42,
            scale: Scale::Full,
        };
        assert!(full.total_ops() >= 1_000_000);
    }

    #[test]
    fn phase_seeds_differ_but_are_stable() {
        let a = LoadSpec {
            seed: 7,
            scale: Scale::Smoke,
        };
        let phases = a.phases();
        let again = a.phases();
        for (x, y) in phases.iter().zip(again.iter()) {
            assert_eq!(x.workload_seed, y.workload_seed);
        }
        let mut seeds: Vec<u64> = phases.iter().map(|p| p.workload_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), phases.len(), "phase seeds must differ");
    }

    #[test]
    fn open_phase_ops_match_schedule() {
        let spec = LoadSpec {
            seed: 1,
            scale: Scale::Smoke,
        };
        for p in spec.phases() {
            if let PhaseMode::Open(ramp) = &p.mode {
                assert_eq!(p.ops, ramp.total_ops());
            }
        }
    }
}
