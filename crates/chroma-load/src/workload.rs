//! Deterministic operation generation: the [`Workload`] trait, the
//! mixed KV workload, and open-loop arrival schedules.
//!
//! Everything here is a pure function of a seed: the same seed yields
//! byte-identical operation streams and ramp schedules across runs
//! (the determinism test encodes two independently constructed streams
//! and compares the bytes). Execution — which thread runs which op,
//! how long it takes — is *not* deterministic; only generation is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Which coloured-action structure an operation runs as.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActionClass {
    /// A plain single-colour top-level action (the serializing base
    /// case), or a `SerializingAction` wrapper for structure ops.
    Serializing,
    /// A two-step `GluedChain` handing a lock between steps.
    Glued,
    /// A top-level independent action invoked from inside a client
    /// action (the §4 billing/bulletin shape).
    Independent,
    /// A declared read-only action over an MVCC snapshot: lock-free
    /// reads at the captured commit frontier.
    Snapshot,
}

impl ActionClass {
    /// Stable lowercase label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ActionClass::Serializing => "serializing",
            ActionClass::Glued => "glued",
            ActionClass::Independent => "independent",
            ActionClass::Snapshot => "snapshot",
        }
    }

    fn tag(self) -> u8 {
        match self {
            ActionClass::Serializing => 0,
            ActionClass::Glued => 1,
            ActionClass::Independent => 2,
            ActionClass::Snapshot => 3,
        }
    }
}

/// What an operation does to its key(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// Read-only.
    Read,
    /// Read-modify-write of one key.
    Write,
    /// A multi-key / maintenance structure operation (two-step
    /// structures on the KV target; settle/prune/retract on the apps).
    Structure,
}

impl OpKind {
    /// Stable lowercase label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Structure => "structure",
        }
    }

    fn tag(self) -> u8 {
        match self {
            OpKind::Read => 0,
            OpKind::Write => 1,
            OpKind::Structure => 2,
        }
    }
}

/// One generated operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    /// Position in the generated stream.
    pub seq: u64,
    /// Colour structure the executor runs it as.
    pub class: ActionClass,
    /// What it does.
    pub kind: OpKind,
    /// Primary key (Zipf-skewed).
    pub key: u64,
    /// Secondary key / payload knob; never equals `key` when the key
    /// space allows it, so two-key ops are genuinely two-key.
    pub aux: u64,
}

impl Op {
    /// The label latency is accounted under: `<class>_<kind>`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match (self.class, self.kind) {
            (ActionClass::Serializing, OpKind::Read) => "serializing_read",
            (ActionClass::Serializing, OpKind::Write) => "serializing_write",
            (ActionClass::Serializing, OpKind::Structure) => "serializing_structure",
            (ActionClass::Glued, OpKind::Read) => "glued_read",
            (ActionClass::Glued, OpKind::Write) => "glued_write",
            (ActionClass::Glued, OpKind::Structure) => "glued_structure",
            (ActionClass::Independent, OpKind::Read) => "independent_read",
            (ActionClass::Independent, OpKind::Write) => "independent_write",
            (ActionClass::Independent, OpKind::Structure) => "independent_structure",
            (ActionClass::Snapshot, OpKind::Read) => "snapshot_read",
            (ActionClass::Snapshot, OpKind::Write) => "snapshot_write",
            (ActionClass::Snapshot, OpKind::Structure) => "snapshot_structure",
        }
    }

    /// Appends a fixed-width byte encoding (the determinism test's
    /// comparison unit).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.push(self.class.tag());
        out.push(self.kind.tag());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.aux.to_le_bytes());
    }
}

/// A deterministic, seeded operation generator.
pub trait Workload: Send {
    /// Stable name for reports.
    fn name(&self) -> &'static str;

    /// Generates the next operation. Must depend only on the seed and
    /// the number of prior calls.
    fn next_op(&mut self) -> Op;

    /// Generates `count` operations.
    fn take_ops(&mut self, count: u64) -> Vec<Op> {
        (0..count).map(|_| self.next_op()).collect()
    }

    /// Encodes `count` operations to bytes (for determinism checks).
    fn encode_ops(&mut self, count: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(usize::try_from(count).unwrap_or(0) * 26);
        for _ in 0..count {
            self.next_op().encode(&mut out);
        }
        out
    }
}

/// Mix fractions and key-space shape for [`MixWorkload`].
///
/// The three kind fractions and the three class fractions must each
/// sum to 1 (validated at construction).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixConfig {
    /// Key-space size (object count on the KV target, account/author
    /// count on the apps).
    pub keys: u64,
    /// Zipfian skew `theta` in `[0, 1)`.
    pub theta: f64,
    /// Fraction of read ops.
    pub reads: f64,
    /// Fraction of write ops.
    pub writes: f64,
    /// Fraction of structure ops.
    pub structures: f64,
    /// Fraction of serializing-class actions.
    pub serializing: f64,
    /// Fraction of glued-class actions.
    pub glued: f64,
    /// Fraction of independent-class actions.
    pub independent: f64,
    /// Fraction of snapshot-class (declared read-only) actions.
    pub snapshot: f64,
}

impl MixConfig {
    /// The default read-heavy skewed mix (Sutra & Shapiro's read-mostly
    /// shape): 70/20/10 kinds, 60/20/20 classes, theta 0.8.
    #[must_use]
    pub fn read_heavy(keys: u64) -> Self {
        MixConfig {
            keys,
            theta: 0.8,
            reads: 0.7,
            writes: 0.2,
            structures: 0.1,
            serializing: 0.6,
            glued: 0.2,
            independent: 0.2,
            snapshot: 0.0,
        }
    }

    /// A write-heavy contended mix: 20/60/20 kinds, same classes,
    /// theta 0.9 (Xu et al.'s complex-concurrency shape).
    #[must_use]
    pub fn write_heavy(keys: u64) -> Self {
        MixConfig {
            keys,
            theta: 0.9,
            reads: 0.2,
            writes: 0.6,
            structures: 0.2,
            serializing: 0.6,
            glued: 0.2,
            independent: 0.2,
            snapshot: 0.0,
        }
    }

    /// The read-heavy mix with a third of its serializing actions
    /// recast as declared read-only snapshots: 70/20/10 kinds,
    /// 40/20/20/20 classes, theta 0.8.
    #[must_use]
    pub fn read_heavy_snapshots(keys: u64) -> Self {
        MixConfig {
            keys,
            theta: 0.8,
            reads: 0.7,
            writes: 0.2,
            structures: 0.1,
            serializing: 0.4,
            glued: 0.2,
            independent: 0.2,
            snapshot: 0.2,
        }
    }

    fn validate(&self) {
        assert!(self.keys >= 2, "mix needs at least two keys");
        let kinds = self.reads + self.writes + self.structures;
        let classes = self.serializing + self.glued + self.independent + self.snapshot;
        assert!((kinds - 1.0).abs() < 1e-9, "kind mix sums to {kinds}");
        assert!((classes - 1.0).abs() < 1e-9, "class mix sums to {classes}");
        assert!(
            self.reads >= 0.0 && self.writes >= 0.0 && self.structures >= 0.0,
            "negative kind fraction"
        );
        assert!(
            self.serializing >= 0.0
                && self.glued >= 0.0
                && self.independent >= 0.0
                && self.snapshot >= 0.0,
            "negative class fraction"
        );
    }
}

/// The standard mixed workload: Zipf-skewed keys, configurable
/// kind/class mix, fully determined by `(config, seed)`.
#[derive(Clone, Debug)]
pub struct MixWorkload {
    cfg: MixConfig,
    zipf: Zipf,
    rng: StdRng,
    seq: u64,
}

impl MixWorkload {
    /// Builds the generator. Draw order is part of the determinism
    /// contract: kind, class, key, then aux — always four draws per op.
    #[must_use]
    pub fn new(cfg: MixConfig, seed: u64) -> Self {
        cfg.validate();
        MixWorkload {
            cfg,
            zipf: Zipf::new(cfg.keys, cfg.theta),
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
        }
    }

    /// The configuration this generator draws from.
    #[must_use]
    pub fn config(&self) -> MixConfig {
        self.cfg
    }
}

impl Workload for MixWorkload {
    fn name(&self) -> &'static str {
        "mix"
    }

    fn next_op(&mut self) -> Op {
        // Fixed draw order; every op consumes exactly four draws so the
        // stream position is a pure function of `seq`.
        let kind_u: f64 = self.rng.gen_range(0.0..1.0);
        let class_u: f64 = self.rng.gen_range(0.0..1.0);
        let key = self.zipf.sample(&mut self.rng);
        let aux_raw = self.rng.gen_range(0..self.cfg.keys - 1);
        // aux is drawn from the key space minus `key`, keeping two-key
        // ops two-key.
        let aux = if aux_raw >= key { aux_raw + 1 } else { aux_raw };

        let kind = if kind_u < self.cfg.reads {
            OpKind::Read
        } else if kind_u < self.cfg.reads + self.cfg.writes {
            OpKind::Write
        } else {
            OpKind::Structure
        };
        // The snapshot slice is carved off the *top* of the unit
        // interval: with `snapshot == 0.0` the comparison is
        // `class_u >= 1.0`, which a draw from `0.0..1.0` never
        // satisfies, so pre-snapshot streams stay byte-identical.
        let class = if class_u < self.cfg.serializing {
            ActionClass::Serializing
        } else if class_u < self.cfg.serializing + self.cfg.glued {
            ActionClass::Glued
        } else if class_u >= 1.0 - self.cfg.snapshot {
            ActionClass::Snapshot
        } else {
            ActionClass::Independent
        };

        let seq = self.seq;
        self.seq += 1;
        Op {
            seq,
            class,
            kind,
            key,
            aux,
        }
    }
}

/// One constant-rate segment of an open-loop arrival schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RampPhase {
    /// Target arrival rate, operations per second.
    pub rate_per_sec: u64,
    /// Operations issued at this rate before moving on.
    pub ops: u64,
}

/// A deterministic open-loop arrival schedule: phases of evenly spaced
/// arrivals at increasing (or any) rates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RampSchedule {
    phases: Vec<RampPhase>,
}

impl RampSchedule {
    /// Builds a schedule from `(rate_per_sec, ops)` pairs.
    ///
    /// # Panics
    ///
    /// If any phase has a zero rate or zero ops.
    #[must_use]
    pub fn new(phases: Vec<RampPhase>) -> Self {
        assert!(!phases.is_empty(), "empty ramp schedule");
        for p in &phases {
            assert!(p.rate_per_sec > 0, "zero arrival rate");
            assert!(p.ops > 0, "zero-op ramp phase");
        }
        RampSchedule { phases }
    }

    /// Total operations across all phases.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// The phases, in order.
    #[must_use]
    pub fn phases(&self) -> &[RampPhase] {
        &self.phases
    }

    /// Intended arrival offsets in microseconds from the run start, one
    /// per operation, non-decreasing. Evenly spaced within each phase:
    /// arrival `i` of a phase at rate `r` lands at `i * 1e6 / r` past
    /// the phase start.
    #[must_use]
    pub fn arrival_offsets_us(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(usize::try_from(self.total_ops()).unwrap_or(0));
        let mut base_us = 0u64;
        for p in &self.phases {
            for i in 0..p.ops {
                out.push(base_us + i * 1_000_000 / p.rate_per_sec);
            }
            base_us += p.ops * 1_000_000 / p.rate_per_sec;
        }
        out
    }

    /// Byte encoding of the schedule (for determinism checks).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.phases.len() * 16);
        for p in &self.phases {
            out.extend_from_slice(&p.rate_per_sec.to_le_bytes());
            out.extend_from_slice(&p.ops.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions_are_respected() {
        let cfg = MixConfig::read_heavy(1024);
        let mut w = MixWorkload::new(cfg, 9);
        let ops = w.take_ops(20_000);
        let reads = ops.iter().filter(|o| o.kind == OpKind::Read).count() as f64;
        let glued = ops.iter().filter(|o| o.class == ActionClass::Glued).count() as f64;
        let n = ops.len() as f64;
        assert!((reads / n - 0.7).abs() < 0.02, "reads {}", reads / n);
        assert!((glued / n - 0.2).abs() < 0.02, "glued {}", glued / n);
    }

    #[test]
    fn snapshot_class_fraction_is_respected_and_absent_at_zero() {
        let mut w = MixWorkload::new(MixConfig::read_heavy_snapshots(1024), 11);
        let ops = w.take_ops(20_000);
        let snaps = ops
            .iter()
            .filter(|o| o.class == ActionClass::Snapshot)
            .count() as f64;
        assert!((snaps / 20_000.0 - 0.2).abs() < 0.02, "snapshot {snaps}");
        // A zero snapshot fraction must never emit the class (the
        // byte-identity guarantee for pre-snapshot seeds).
        let mut w0 = MixWorkload::new(MixConfig::read_heavy(1024), 11);
        assert!(w0
            .take_ops(20_000)
            .iter()
            .all(|o| o.class != ActionClass::Snapshot));
    }

    #[test]
    fn aux_never_equals_key() {
        let mut w = MixWorkload::new(MixConfig::write_heavy(2), 5);
        for op in w.take_ops(2_000) {
            assert_ne!(op.key, op.aux);
            assert!(op.key < 2 && op.aux < 2);
        }
    }

    #[test]
    fn seq_numbers_and_encoding_are_stable() {
        let mut a = MixWorkload::new(MixConfig::read_heavy(64), 1234);
        let mut b = MixWorkload::new(MixConfig::read_heavy(64), 1234);
        assert_eq!(a.encode_ops(5_000), b.encode_ops(5_000));
        let mut c = MixWorkload::new(MixConfig::read_heavy(64), 1235);
        assert_ne!(
            MixWorkload::new(MixConfig::read_heavy(64), 1234).encode_ops(1_000),
            c.encode_ops(1_000),
            "different seeds should diverge"
        );
    }

    #[test]
    fn ramp_arrivals_are_monotone_and_rate_shaped() {
        let ramp = RampSchedule::new(vec![
            RampPhase {
                rate_per_sec: 1_000,
                ops: 100,
            },
            RampPhase {
                rate_per_sec: 2_000,
                ops: 100,
            },
        ]);
        let arrivals = ramp.arrival_offsets_us();
        assert_eq!(arrivals.len(), 200);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Phase 1 spacing 1000us, phase 2 spacing 500us.
        assert_eq!(arrivals[1] - arrivals[0], 1_000);
        assert_eq!(arrivals[101] - arrivals[100], 500);
        // Phase 2 starts exactly where phase 1's budget ends.
        assert_eq!(arrivals[100], 100_000);
    }
}
