//! Open- and closed-loop drivers: execute a generated op stream on an
//! [`Executor`](crate::exec::Executor) and account per-class latency.
//!
//! * **Closed loop** — `threads` workers pull the next op as soon as
//!   the previous one finishes; latency is pure service time and
//!   throughput is the stack's capacity at that concurrency.
//! * **Open loop** — arrivals follow a precomputed
//!   [`RampSchedule`](crate::workload::RampSchedule); latency is
//!   measured from the op's *intended arrival* to its completion, so
//!   queueing delay when the stack falls behind the offered rate is
//!   charged to the op (no coordinated omission).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use chroma_obs::Histogram;

use crate::exec::Executor;
use crate::workload::Op;

/// One phase's measured outcome.
#[derive(Clone, Debug)]
pub struct PhaseResult {
    /// Phase name (report key).
    pub name: String,
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Worker threads used.
    pub threads: usize,
    /// Operations attempted.
    pub ops: u64,
    /// Operations that returned an error (after executor retries).
    pub errors: u64,
    /// Wall-clock from first to last op.
    pub elapsed: Duration,
    /// Per-class latency, keyed by `Op::label`.
    pub classes: BTreeMap<&'static str, Histogram>,
}

impl PhaseResult {
    /// Completed-operation throughput.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        (self.ops - self.errors) as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of attempted ops that errored.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.errors as f64 / self.ops as f64
    }
}

struct WorkerOut {
    classes: BTreeMap<&'static str, Histogram>,
    errors: u64,
}

fn merge(outs: Vec<WorkerOut>) -> (BTreeMap<&'static str, Histogram>, u64) {
    let mut classes: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let mut errors = 0;
    for out in outs {
        errors += out.errors;
        for (label, h) in out.classes {
            classes.entry(label).or_default().merge(&h);
        }
    }
    (classes, errors)
}

/// Runs `ops` closed-loop on `threads` workers sharing one cursor.
#[must_use]
pub fn run_closed(name: &str, exec: &dyn Executor, ops: &[Op], threads: usize) -> PhaseResult {
    let threads = threads.max(1);
    let cursor = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    let outs = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut classes: BTreeMap<&'static str, Histogram> = BTreeMap::new();
                    let mut errors = 0u64;
                    barrier.wait();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(op) = ops.get(i) else { break };
                        let started = Instant::now();
                        match exec.execute(op) {
                            Ok(()) => classes
                                .entry(op.label())
                                .or_default()
                                .observe_duration(started.elapsed()),
                            Err(_) => errors += 1,
                        }
                    }
                    WorkerOut { classes, errors }
                })
            })
            .collect();
        let started = Instant::now();
        let outs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect();
        (outs, started.elapsed())
    });
    let (outs, elapsed) = outs;
    let (classes, errors) = merge(outs);
    PhaseResult {
        name: name.to_owned(),
        mode: "closed",
        threads,
        ops: ops.len() as u64,
        errors,
        elapsed,
        classes,
    }
}

/// Runs `ops` open-loop: op `i` is released at `arrivals_us[i]` past
/// the phase start, and its latency includes any backlog delay.
///
/// # Panics
///
/// If `arrivals_us.len() != ops.len()`.
#[must_use]
pub fn run_open(
    name: &str,
    exec: &dyn Executor,
    ops: &[Op],
    arrivals_us: &[u64],
    threads: usize,
) -> PhaseResult {
    assert_eq!(ops.len(), arrivals_us.len(), "one arrival per op");
    let threads = threads.max(1);
    let cursor = AtomicUsize::new(0);
    let lag_max = AtomicU64::new(0);
    let barrier = Barrier::new(threads);
    // The clock starts when all workers are ready; each worker
    // re-reads it through a reference.
    let start_cell = std::sync::OnceLock::new();
    let outs = std::thread::scope(|scope| {
        let start_cell = &start_cell;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    let start = *start_cell.get_or_init(Instant::now);
                    let mut classes: BTreeMap<&'static str, Histogram> = BTreeMap::new();
                    let mut errors = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(op) = ops.get(i) else { break };
                        let target = Duration::from_micros(arrivals_us[i]);
                        // Sleep coarsely, then let the executor run; a
                        // sub-millisecond early release is noise
                        // relative to the latencies being measured.
                        loop {
                            let now = start.elapsed();
                            if now >= target {
                                break;
                            }
                            std::thread::sleep((target - now).min(Duration::from_millis(1)));
                        }
                        let result = exec.execute(op);
                        let done = start.elapsed();
                        let latency = done.saturating_sub(target);
                        match result {
                            Ok(()) => {
                                classes
                                    .entry(op.label())
                                    .or_default()
                                    .observe_duration(latency);
                                let lag = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
                                lag_max.fetch_max(lag, Ordering::Relaxed);
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    WorkerOut { classes, errors }
                })
            })
            .collect();
        let outs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect();
        let elapsed = start_cell.get().map_or(Duration::ZERO, Instant::elapsed);
        (outs, elapsed)
    });
    let (outs, elapsed) = outs;
    let (classes, errors) = merge(outs);
    PhaseResult {
        name: name.to_owned(),
        mode: "open",
        threads,
        ops: ops.len() as u64,
        errors,
        elapsed,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ActionClass, OpKind};
    use chroma_core::ActionError;

    /// An executor that sleeps a fixed time and fails on demand.
    struct FakeExec {
        sleep: Duration,
        fail_every: u64,
    }

    impl Executor for FakeExec {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn execute(&self, op: &Op) -> Result<(), ActionError> {
            if !self.sleep.is_zero() {
                std::thread::sleep(self.sleep);
            }
            if self.fail_every > 0 && op.seq.is_multiple_of(self.fail_every) {
                return Err(ActionError::failed("injected"));
            }
            Ok(())
        }
    }

    fn ops(n: u64) -> Vec<Op> {
        (0..n)
            .map(|seq| Op {
                seq,
                class: ActionClass::Serializing,
                kind: if seq % 2 == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                key: seq % 8,
                aux: (seq + 1) % 8,
            })
            .collect()
    }

    #[test]
    fn closed_loop_counts_everything() {
        let exec = FakeExec {
            sleep: Duration::ZERO,
            fail_every: 10,
        };
        let ops = ops(1000);
        let r = run_closed("t", &exec, &ops, 4);
        assert_eq!(r.ops, 1000);
        assert_eq!(r.errors, 100);
        let measured: u64 = r.classes.values().map(Histogram::count).sum();
        assert_eq!(measured, 900);
        assert!(r.classes.contains_key("serializing_read"));
        assert!(r.classes.contains_key("serializing_write"));
        assert!((r.error_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn open_loop_charges_backlog_to_latency() {
        // One worker, 2ms service time, arrivals every 500us: the
        // backlog grows, so late ops see multi-millisecond latency even
        // though service time is constant.
        let exec = FakeExec {
            sleep: Duration::from_millis(2),
            fail_every: 0,
        };
        let ops = ops(20);
        let arrivals: Vec<u64> = (0..20).map(|i| i * 500).collect();
        let r = run_open("t", &exec, &ops, &arrivals, 1);
        assert_eq!(r.errors, 0);
        let mut all = Histogram::new();
        for h in r.classes.values() {
            all.merge(h);
        }
        assert_eq!(all.count(), 20);
        // The last op arrived at 9.5ms but ~40ms of service stood
        // before it: p99 must be far above one service time.
        assert!(
            all.quantile_us(0.99) > 10_000,
            "p99 {}us",
            all.quantile_us(0.99)
        );
    }
}
