//! Executors: map generated [`Op`]s onto the real runtime stack.
//!
//! Three targets, all driven through the public APIs an application
//! would use:
//!
//! * [`KvExecutor`] — a table of `u64` objects on `Runtime` (+ any
//!   backend), exercising plain, serializing, glued and independent
//!   coloured actions;
//! * [`BillingExecutor`] — the §4(iii) [`Ledger`] app;
//! * [`BulletinExecutor`] — the §4(i) [`BulletinBoard`] app.
//!
//! Two-key operations always touch the lower-indexed object first, so
//! the harness itself never creates lock-order cycles: observed
//! deadlocks would be runtime bugs, not workload artefacts (deadlock
//! victims are retried a few times, then counted as errors).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chroma_apps::{BulletinBoard, Ledger};
use chroma_core::{ActionError, ObjectId, Runtime};
use chroma_structures::{independent_sync, GluedChain, SerializingAction};

use crate::workload::{ActionClass, Op, OpKind};

/// Deadlock-victim retries before an op counts as an error.
const RETRIES: usize = 4;

/// Executes generated operations against a target.
pub trait Executor: Sync {
    /// Stable name for reports.
    fn name(&self) -> &'static str;

    /// Runs one operation to completion.
    ///
    /// # Errors
    ///
    /// Propagates the runtime/application error; the driver counts it.
    fn execute(&self, op: &Op) -> Result<(), ActionError>;
}

/// The raw-runtime target: `keys` persistent `u64` counters.
pub struct KvExecutor {
    rt: Arc<Runtime>,
    objects: Vec<ObjectId>,
}

impl KvExecutor {
    /// Creates the object table (one committed action per object).
    ///
    /// # Errors
    ///
    /// Propagates object-creation failures.
    pub fn new(rt: Arc<Runtime>, keys: u64) -> Result<Self, ActionError> {
        let objects = (0..keys)
            .map(|_| rt.create_object(&0u64))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(KvExecutor { rt, objects })
    }

    /// The two objects of an op, lock-order normalised (low index
    /// first).
    fn pair(&self, op: &Op) -> (ObjectId, ObjectId) {
        let (lo, hi) = if op.key <= op.aux {
            (op.key, op.aux)
        } else {
            (op.aux, op.key)
        };
        (self.objects[lo as usize], self.objects[hi as usize])
    }
}

fn bump(v: &mut u64) {
    *v = v.wrapping_add(1);
}

impl Executor for KvExecutor {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn execute(&self, op: &Op) -> Result<(), ActionError> {
        let key = self.objects[op.key as usize];
        let (lo, hi) = self.pair(op);
        match (op.class, op.kind) {
            (ActionClass::Serializing, OpKind::Read) => {
                self.rt.atomic(|a| a.read::<u64>(key)).map(drop)
            }
            (ActionClass::Serializing, OpKind::Write) => {
                self.rt.atomic_retry(RETRIES, |a| a.modify(key, bump))
            }
            (ActionClass::Serializing, OpKind::Structure) => {
                let sa = SerializingAction::begin(&self.rt)?;
                sa.step(|s| s.modify(lo, bump))?;
                sa.step(|s| {
                    let v: u64 = s.read(lo)?;
                    s.modify(hi, |w: &mut u64| *w = w.wrapping_add(v & 1))
                })?;
                sa.end()
            }
            (ActionClass::Glued, OpKind::Read) => {
                let chain = GluedChain::begin(&self.rt, 1)?;
                chain.step(|s| s.read::<u64>(lo).map(drop))?;
                chain.step(|s| s.read::<u64>(hi).map(drop))?;
                chain.end()
            }
            (ActionClass::Glued, OpKind::Write | OpKind::Structure) => {
                let chain = GluedChain::begin(&self.rt, 1)?;
                chain.step(|s| {
                    s.modify(lo, bump)?;
                    s.hand_over(lo)
                })?;
                chain.step(|s| {
                    let v: u64 = s.read(lo)?;
                    s.modify(hi, |w: &mut u64| *w = w.wrapping_add(v & 1))
                })?;
                chain.end()
            }
            (ActionClass::Independent, OpKind::Read) => self
                .rt
                .atomic(|a| independent_sync(a, |b| b.read::<u64>(key).map(drop))),
            (ActionClass::Independent, OpKind::Write) => self
                .rt
                .atomic_retry(RETRIES, |a| independent_sync(a, |b| b.modify(key, bump))),
            (ActionClass::Independent, OpKind::Structure) => self.rt.atomic_retry(RETRIES, |a| {
                independent_sync(a, |b| b.modify(lo, bump))?;
                independent_sync(a, |b| b.modify(hi, bump))
            }),
            // Snapshot-class actions are declared read-only: every
            // variant reads at one consistent MVCC snapshot without
            // ever touching the lock table (kinds only vary the scan
            // width — there is nothing to write).
            (ActionClass::Snapshot, OpKind::Read) => {
                let snap = self.rt.begin_read_only();
                snap.read::<u64>(key).map(drop)
            }
            (ActionClass::Snapshot, OpKind::Write) => {
                let snap = self.rt.begin_read_only();
                snap.read::<u64>(lo)?;
                snap.read::<u64>(hi).map(drop)
            }
            (ActionClass::Snapshot, OpKind::Structure) => {
                // A longer consistent scan: eight keys, wrapping around
                // the table from the op's primary key.
                let snap = self.rt.begin_read_only();
                for i in 0..8u64 {
                    let idx = (op.key + i) % self.objects.len() as u64;
                    snap.read::<u64>(self.objects[idx as usize]).map(drop)?;
                }
                Ok(())
            }
        }
    }
}

/// The §4(iii) billing target: charges under skewed account ids, with
/// periodic [`Ledger::settle`] keeping the itemised list bounded.
pub struct BillingExecutor {
    rt: Arc<Runtime>,
    ledger: Ledger,
    accounts: Vec<String>,
}

impl BillingExecutor {
    /// Creates a fresh ledger and `keys` account names.
    ///
    /// # Errors
    ///
    /// Propagates ledger-creation failures.
    pub fn new(rt: Arc<Runtime>, keys: u64) -> Result<Self, ActionError> {
        let ledger = Ledger::create(&rt)?;
        let accounts = (0..keys).map(|i| format!("acct-{i}")).collect();
        Ok(BillingExecutor {
            rt,
            ledger,
            accounts,
        })
    }

    /// Total charged so far (for end-of-phase sanity checks).
    ///
    /// # Errors
    ///
    /// Propagates ledger read failures.
    pub fn total(&self) -> Result<u64, ActionError> {
        self.ledger.total()
    }
}

impl Executor for BillingExecutor {
    fn name(&self) -> &'static str {
        "billing"
    }

    fn execute(&self, op: &Op) -> Result<(), ActionError> {
        let account = &self.accounts[op.key as usize];
        let amount = op.aux % 7 + 1;
        match op.kind {
            OpKind::Read => self.ledger.total().map(drop),
            OpKind::Write => self.rt.atomic_retry(RETRIES, |a| {
                self.ledger.charge_from(a, account, "io", amount)
            }),
            // Structure ops alternate metering (charge + nested service
            // body) with settlement, which folds the itemised charges
            // into the running total and keeps ledger state bounded
            // under sustained load.
            OpKind::Structure => {
                if op.aux.is_multiple_of(2) {
                    self.ledger.settle().map(drop)
                } else {
                    self.rt.atomic_retry(RETRIES, |a| {
                        self.ledger.metered(a, account, "svc", amount, |_s| Ok(()))
                    })
                }
            }
        }
    }
}

/// The §4(i) bulletin-board target: skewed authors posting, readers
/// scanning, and retract/prune as the structure ops.
pub struct BulletinExecutor {
    rt: Arc<Runtime>,
    board: BulletinBoard,
    authors: Vec<String>,
    /// Posts made through this executor (drives retract targets).
    posted: AtomicU64,
    /// Board size the periodic prune keeps.
    keep_live: usize,
}

impl BulletinExecutor {
    /// Creates a fresh board and `keys` author names.
    ///
    /// # Errors
    ///
    /// Propagates board-creation failures.
    pub fn new(rt: Arc<Runtime>, keys: u64) -> Result<Self, ActionError> {
        let board = BulletinBoard::create(&rt)?;
        let authors = (0..keys).map(|i| format!("author-{i}")).collect();
        Ok(BulletinExecutor {
            rt,
            board,
            authors,
            posted: AtomicU64::new(0),
            keep_live: 512,
        })
    }

    /// Posts on the board right now (for end-of-phase sanity checks).
    ///
    /// # Errors
    ///
    /// Propagates board read failures.
    pub fn post_count(&self) -> Result<usize, ActionError> {
        self.board.post_count()
    }
}

impl Executor for BulletinExecutor {
    fn name(&self) -> &'static str {
        "bulletin"
    }

    fn execute(&self, op: &Op) -> Result<(), ActionError> {
        let author = &self.authors[op.key as usize];
        match op.kind {
            OpKind::Read => self.board.posts().map(drop),
            OpKind::Write => {
                self.rt
                    .atomic_retry(RETRIES, |a| self.board.post_from(a, author, "load post"))?;
                self.posted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            // Structure ops alternate the compensating retract (of a
            // recent-ish post; a miss is fine and reports false) with
            // the prune that bounds board growth under sustained load.
            OpKind::Structure => {
                if op.aux.is_multiple_of(2) {
                    self.board.prune(self.keep_live).map(drop)
                } else {
                    let posted = self.posted.load(Ordering::Relaxed);
                    let target = posted.saturating_sub(op.aux % 64 + 1);
                    self.board.retract(target).map(drop)
                }
            }
        }
    }
}
