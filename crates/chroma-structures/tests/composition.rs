//! Composition of structures: structures inside structures, nested
//! wrappers, colour-budget sustainability over long lifetimes.

use chroma_core::{ActionError, ColourSet, Runtime, RuntimeConfig};
use chroma_structures::{independent_sync, CompensatingChain, GluedChain, SerializingAction};
use std::time::Duration;

fn rt_fast() -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_millis(300)),
        })
        .build()
}

#[test]
fn serializing_action_nested_under_an_atomic_action() {
    // begin_under: the wrapper is lexically nested, but its steps stay
    // top-level for permanence thanks to their private update colours.
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let outer = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    let sa = SerializingAction::begin_under(&rt, Some(outer)).unwrap();
    sa.step(|s| s.write(o, &1i64)).unwrap();
    sa.end().unwrap();
    // The outer action aborts — the step's effect still stands.
    rt.abort(outer);
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
}

#[test]
fn glued_chain_nested_under_an_atomic_action() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let outer = rt
        .begin_top(ColourSet::single(rt.default_colour()))
        .unwrap();
    let chain = GluedChain::begin_under(&rt, Some(outer), 2).unwrap();
    chain
        .step(|s| {
            s.write(o, &1i64)?;
            s.hand_over(o)
        })
        .unwrap();
    chain.step(|s| s.modify(o, |v: &mut i64| *v += 1)).unwrap();
    chain.end().unwrap();
    rt.abort(outer);
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 2);
}

#[test]
fn serializing_inside_a_serializing_step() {
    // A step that itself runs an inner serializing action: steps are
    // ordinary coloured actions, so structures nest freely.
    let rt = rt_fast();
    let outer_obj = rt.create_object(&0i64).unwrap();
    let inner_obj = rt.create_object(&0i64).unwrap();
    let outer = SerializingAction::begin(&rt).unwrap();
    outer
        .step(|s| {
            s.write(outer_obj, &1i64)?;
            // The inner structure nests under the step itself.
            let inner = SerializingAction::begin_under(&rt, Some(s.id()))?;
            inner.step(|t| t.write(inner_obj, &1i64))?;
            inner.end()
        })
        .unwrap();
    outer.end().unwrap();
    assert_eq!(rt.read_committed::<i64>(outer_obj).unwrap(), 1);
    assert_eq!(rt.read_committed::<i64>(inner_obj).unwrap(), 1);
}

#[test]
fn compensating_chain_wrapping_serializing_work() {
    // A compensating step whose body internally uses a serializing
    // action; the compensation undoes the net effect.
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let chain = CompensatingChain::begin(&rt);
    chain
        .step(
            "bulk-update",
            |_| {
                let sa = SerializingAction::begin(&rt).unwrap();
                sa.step(|s| s.modify(o, |v: &mut i64| *v += 5))?;
                sa.end()
            },
            move |s| s.modify(o, |v: &mut i64| *v -= 5),
        )
        .unwrap();
    let report = chain.unwind().unwrap();
    assert!(report.is_clean());
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 0);
}

#[test]
fn independent_action_inside_glued_step() {
    let rt = Runtime::builder().build();
    let staged = rt.create_object(&0i64).unwrap();
    let audit = rt.create_object(&0u32).unwrap();
    let chain = GluedChain::begin(&rt, 2).unwrap();
    let failed = chain.step(|s| {
        s.write(staged, &1i64)?;
        s.hand_over(staged)?;
        // Audit from within the step via an independent action on the
        // step's scope is not exposed; use a detached async one instead.
        chroma_structures::independent_async(&rt, move |a| a.modify(audit, |n: &mut u32| *n += 1))
            .join()?;
        Err::<(), _>(ActionError::failed("step fails after auditing"))
    });
    assert!(failed.is_err());
    chain.end().unwrap();
    // The step was undone, the audit was not.
    assert_eq!(rt.read_committed::<i64>(staged).unwrap(), 0);
    assert_eq!(rt.read_committed::<u32>(audit).unwrap(), 1);
}

#[test]
fn colour_budget_sustained_over_many_structures() {
    // Thousands of structures over one runtime: colour recycling keeps
    // the 64-slot universe from exhausting.
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    for i in 0..500 {
        match i % 3 {
            0 => {
                let sa = SerializingAction::begin(&rt).unwrap();
                sa.step(|s| s.modify(o, |v: &mut i64| *v += 1)).unwrap();
                sa.end().unwrap();
            }
            1 => {
                let chain = GluedChain::begin(&rt, 3).unwrap();
                chain.step(|s| s.modify(o, |v: &mut i64| *v += 1)).unwrap();
                chain.end().unwrap();
            }
            _ => {
                rt.atomic(|a| independent_sync(a, |b| b.modify(o, |v: &mut i64| *v += 1)))
                    .unwrap();
            }
        }
    }
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 500);
    assert!(rt.universe().live_count() < 10);
    rt.prune_terminated();
}

#[test]
fn dropping_structures_aborts_cleanly() {
    let rt = rt_fast();
    let o = rt.create_object(&0i64).unwrap();
    {
        let sa = SerializingAction::begin(&rt).unwrap();
        sa.step(|s| s.write(o, &1i64)).unwrap();
        // Dropped without end(): wrapper aborts, step effect stays.
    }
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
    assert!(rt.atomic(|a| a.read::<i64>(o)).is_ok(), "fences released");
    {
        let chain = GluedChain::begin(&rt, 2).unwrap();
        chain
            .step(|s| {
                s.write(o, &2i64)?;
                s.hand_over(o)
            })
            .unwrap();
        // Dropped mid-chain.
    }
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 2);
    assert!(rt.atomic(|a| a.read::<i64>(o)).is_ok());
    assert_eq!(rt.lock_entry_count(), 0);
}
