//! Property tests for the action structures: random step schedules
//! against survival oracles, and random structure trees through the
//! compiler's predict-vs-execute loop.

use chroma_core::{ActionError, Runtime};
use chroma_structures::compiler::{assign, PlanKind, Structure};
use chroma_structures::{GluedChain, SerializingAction};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Serializing actions: random step outcomes
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any schedule of succeeding/failing steps over shared
    /// objects, a step's effects are permanent iff the step succeeded —
    /// regardless of anything that happens later (the §3.1 semantics).
    #[test]
    fn serializing_steps_survive_iff_they_committed(
        outcomes in prop::collection::vec(any::<bool>(), 1..8),
        abandon in any::<bool>(),
    ) {
        let rt = Runtime::builder().build();
        let objects: Vec<_> = outcomes
            .iter()
            .map(|_| rt.create_object(&0i64).expect("create"))
            .collect();
        let sa = SerializingAction::begin(&rt).expect("begin");
        for (i, (&ok, &object)) in outcomes.iter().zip(&objects).enumerate() {
            let result = sa.step(|s| {
                s.write(object, &(i as i64 + 1))?;
                if ok {
                    Ok(())
                } else {
                    Err(ActionError::failed("step fails"))
                }
            });
            prop_assert_eq!(result.is_ok(), ok);
        }
        if abandon {
            sa.abandon();
        } else {
            sa.end().expect("end");
        }
        for (i, (&ok, &object)) in outcomes.iter().zip(&objects).enumerate() {
            let value = rt.read_committed::<i64>(object).expect("read");
            let expected = if ok { i as i64 + 1 } else { 0 };
            prop_assert_eq!(
                value, expected,
                "step {} (ok={}, abandon={})", i, ok, abandon
            );
        }
        // No leaked locks either way.
        prop_assert_eq!(rt.lock_entry_count(), 0);
    }

    /// Writes to one object across steps: the surviving value is the
    /// last *successful* step's, and intermediate failures never leak.
    #[test]
    fn serializing_single_object_last_success_wins(
        outcomes in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let rt = Runtime::builder().build();
        let object = rt.create_object(&0i64).expect("create");
        let sa = SerializingAction::begin(&rt).expect("begin");
        let mut expected = 0i64;
        for (i, &ok) in outcomes.iter().enumerate() {
            let value = i as i64 + 1;
            let _ = sa.step(|s| {
                s.write(object, &value)?;
                if ok {
                    Ok(())
                } else {
                    Err(ActionError::failed("fails"))
                }
            });
            if ok {
                expected = value;
            }
        }
        sa.end().expect("end");
        prop_assert_eq!(rt.read_committed::<i64>(object).expect("read"), expected);
    }

    /// Glued chains: objects handed over stay protected until the step
    /// after next commits; objects never handed over are free right
    /// after their step.
    #[test]
    fn glued_chain_handover_schedule(
        hand_over in prop::collection::vec(any::<bool>(), 1..6),
    ) {
        let rt = Runtime::builder().config(chroma_core::RuntimeConfig {
            lock_timeout: Some(std::time::Duration::from_millis(100)),
        }).build();
        let objects: Vec<_> = hand_over
            .iter()
            .map(|_| rt.create_object(&0u8).expect("create"))
            .collect();
        let chain = GluedChain::begin(&rt, hand_over.len()).expect("begin");
        for (i, (&keep, &object)) in hand_over.iter().zip(&objects).enumerate() {
            chain
                .step(|s| {
                    s.write(object, &(i as u8 + 1))?;
                    if keep {
                        s.hand_over(object)?;
                    }
                    Ok(())
                })
                .expect("step");
            // Previous step's handed-over object is still fenced; this
            // step's non-handed object is free.
            let probe = rt.atomic(|a| a.read::<u8>(object));
            prop_assert_eq!(probe.is_ok(), !keep, "step {}", i);
        }
        chain.end().expect("end");
        // Everything free at the end, all committed values intact.
        for (i, &object) in objects.iter().enumerate() {
            prop_assert_eq!(
                rt.atomic(|a| a.read::<u8>(object)).expect("read"),
                i as u8 + 1
            );
        }
        prop_assert_eq!(rt.lock_entry_count(), 0);
    }
}

// ---------------------------------------------------------------------
// Compiler: random structure trees, predict vs execute
// ---------------------------------------------------------------------

/// A compact generator of random structures with named actions/works.
fn structure_strategy() -> impl Strategy<Value = Structure> {
    let leaf = (0u32..1000).prop_map(|i| Structure::work(format!("w{i}")));
    leaf.prop_recursive(3, 12, 3, |inner| {
        let children = prop::collection::vec(inner, 1..3);
        (0u32..1000, 0usize..4, children, 0usize..4).prop_map(|(id, kind, children, levels)| {
            match kind {
                0 => Structure::action(format!("a{id}"), children),
                1 => Structure::independent(format!("i{id}"), levels.max(1), children),
                2 => Structure::glued(format!("g{id}"), children),
                _ => Structure::serializing(format!("s{id}"), children),
            }
        })
    })
}

/// Collects the work-node names of a structure.
fn work_names(s: &Structure, out: &mut Vec<String>) {
    match s {
        Structure::Work { name } => out.push(name.clone()),
        Structure::Action { children, .. } | Structure::Independent { children, .. } => {
            for c in children {
                work_names(c, out);
            }
        }
        Structure::Serializing { steps, .. } | Structure::Glued { steps, .. } => {
            for c in steps {
                work_names(c, out);
            }
        }
    }
}

/// Collects every named node (for aborter selection).
fn node_names(s: &Structure, out: &mut Vec<String>) {
    match s {
        Structure::Work { name } => out.push(name.clone()),
        Structure::Action { name, children } | Structure::Independent { name, children, .. } => {
            out.push(name.clone());
            for c in children {
                node_names(c, out);
            }
        }
        Structure::Serializing { name, steps } | Structure::Glued { name, steps } => {
            out.push(name.clone());
            for c in steps {
                node_names(c, out);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random structures and every single-aborter schedule, the
    /// compiler's survival prediction matches real execution. This is
    /// the deep differential: the static inheritance-chain analysis
    /// versus the live runtime's per-colour commit machinery.
    #[test]
    fn compiler_prediction_matches_execution(structure in structure_strategy()) {
        // Wrap in a root action so `Independent` levels have an anchor
        // context even at the top.
        let root = Structure::top("root", vec![structure]);
        let Ok(plan) = assign(&root) else {
            // Plans needing >64 colours are legitimately rejected.
            return Ok(());
        };
        let mut works = Vec::new();
        work_names(&root, &mut works);
        works.dedup();
        let mut names = Vec::new();
        node_names(&root, &mut names);
        names.dedup();
        // Cap the schedules to keep runtime bounded.
        for aborter in names.iter().take(6) {
            let rt = Runtime::builder().build();
            let result = plan
                .execute(&rt, &|name| name != aborter)
                .expect("execute");
            for work in &works {
                let Some(undone) = plan.undone_by(work, aborter) else {
                    continue;
                };
                let survived = *result
                    .survived
                    .get(work)
                    .expect("work present in report");
                prop_assert_eq!(
                    survived,
                    !undone,
                    "work {} aborter {}", work, aborter
                );
            }
            prop_assert_eq!(rt.lock_entry_count(), 0);
        }
    }

    /// Control nodes never have an update colour; work nodes always do;
    /// every node's fences are within its own colour set.
    #[test]
    fn plans_are_well_formed(structure in structure_strategy()) {
        let root = Structure::top("root", vec![structure]);
        let Ok(plan) = assign(&root) else { return Ok(()); };
        for node in &plan.nodes {
            match node.kind {
                PlanKind::Control => prop_assert!(node.update.is_none()),
                PlanKind::Work => prop_assert!(node.update.is_some()),
                PlanKind::Action => {}
            }
            prop_assert!(
                node.fences.is_subset_of(node.colours),
                "{}: fences outside colour set", node.name
            );
            prop_assert!(!node.colours.is_empty(), "{}: no colours", node.name);
            if let Some(update) = node.update {
                prop_assert!(node.colours.contains(update));
            }
        }
    }
}
