//! Behavioural tests for the §3 action structures: the three serializing
//! outcomes, glued hand-over and early release, independent actions and
//! the fig. 13 conflict caveat.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chroma_base::LockMode;
use chroma_core::{ActionError, Runtime, RuntimeConfig};
use chroma_structures::{
    independent_async, independent_at_level, independent_sync, independent_with_compensation,
    probe_conflict, GluedChain, GluedGroup, SerializingAction,
};

fn rt_fast() -> Runtime {
    Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_millis(300)),
        })
        .build()
}

// ---------------------------------------------------------------------
// Serializing actions: the three outcomes of §3.1
// ---------------------------------------------------------------------

#[test]
fn serializing_outcome_both_commit() {
    let rt = Runtime::builder().build();
    let b_obj = rt.create_object(&0i64).unwrap();
    let c_obj = rt.create_object(&0i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    sa.step(|s| s.write(b_obj, &1i64)).unwrap();
    sa.step(|s| {
        let b: i64 = s.read(b_obj)?;
        s.write(c_obj, &(b + 1))
    })
    .unwrap();
    sa.end().unwrap();
    assert_eq!(rt.read_committed::<i64>(b_obj).unwrap(), 1);
    assert_eq!(rt.read_committed::<i64>(c_obj).unwrap(), 2);
}

#[test]
fn serializing_outcome_first_step_aborts() {
    let rt = Runtime::builder().build();
    let b_obj = rt.create_object(&0i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    let err = sa.step(|s| {
        s.write(b_obj, &1i64)?;
        Err::<(), _>(ActionError::failed("B aborts"))
    });
    assert!(err.is_err());
    sa.end().unwrap();
    // Outcome (i): no effects.
    assert_eq!(rt.read_committed::<i64>(b_obj).unwrap(), 0);
}

#[test]
fn serializing_outcome_second_step_aborts_first_survives() {
    let rt = Runtime::builder().build();
    let b_obj = rt.create_object(&0i64).unwrap();
    let c_obj = rt.create_object(&0i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    sa.step(|s| s.write(b_obj, &1i64)).unwrap();
    let err = sa.step(|s| {
        s.write(c_obj, &2i64)?;
        Err::<(), _>(ActionError::failed("C aborts"))
    });
    assert!(err.is_err());
    sa.end().unwrap();
    // Outcome (iii): B's effects alone are permanent — the behaviour
    // plain nesting cannot give (contrast fig. 2).
    assert_eq!(rt.read_committed::<i64>(b_obj).unwrap(), 1);
    assert_eq!(rt.read_committed::<i64>(c_obj).unwrap(), 0);
}

#[test]
fn serializing_step_work_survives_wrapper_abandon() {
    let rt = Runtime::builder().build();
    let b_obj = rt.create_object(&0i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    sa.step(|s| s.write(b_obj, &1i64)).unwrap();
    sa.abandon(); // "not atomic with respect to failures"
    assert_eq!(rt.read_committed::<i64>(b_obj).unwrap(), 1);
}

#[test]
fn serializing_fences_objects_between_steps() {
    let rt = rt_fast();
    let o = rt.create_object(&0i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    sa.step(|s| s.write(o, &1i64)).unwrap();
    // Between steps: a stranger cannot read or write o.
    let err = rt.atomic(|a| a.read::<i64>(o)).unwrap_err();
    assert!(matches!(err, ActionError::Lock(_)));
    // But the next step can.
    sa.step(|s| {
        let v: i64 = s.read(o)?;
        s.write(o, &(v + 1))
    })
    .unwrap();
    sa.end().unwrap();
    // After the wrapper ends, the object is free.
    assert_eq!(rt.atomic(|a| a.read::<i64>(o)).unwrap(), 2);
}

#[test]
fn serializing_read_fence_blocks_writers_only_for_strangers() {
    let rt = rt_fast();
    let o = rt.create_object(&7i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    sa.step(|s| s.read::<i64>(o).map(|_| ())).unwrap();
    // Stranger writes are blocked (the fence read lock is retained)...
    assert!(rt.atomic(|a| a.write(o, &8i64)).is_err());
    // ...but stranger READS are fine: the wrapper holds only a read
    // fence for objects the steps merely read.
    assert_eq!(rt.atomic(|a| a.read::<i64>(o)).unwrap(), 7);
    sa.end().unwrap();
}

#[test]
fn serializing_steps_make_visible_simultaneously_at_end() {
    let rt = rt_fast();
    let o1 = rt.create_object(&0i64).unwrap();
    let o2 = rt.create_object(&0i64).unwrap();
    let sa = SerializingAction::begin(&rt).unwrap();
    sa.step(|s| s.write(o1, &1i64)).unwrap();
    sa.step(|s| s.write(o2, &1i64)).unwrap();
    // Both steps committed (stable), but neither is visible to others.
    assert!(rt.atomic(|a| a.read::<i64>(o1)).is_err());
    assert!(rt.atomic(|a| a.read::<i64>(o2)).is_err());
    sa.end().unwrap();
    assert_eq!(rt.atomic(|a| a.read::<i64>(o1)).unwrap(), 1);
    assert_eq!(rt.atomic(|a| a.read::<i64>(o2)).unwrap(), 1);
}

#[test]
fn serializing_concurrent_steps_serialize_on_conflicts() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let sa = Arc::new(SerializingAction::begin(&rt).unwrap());
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let sa = Arc::clone(&sa);
            std::thread::spawn(move || {
                for _ in 0..10 {
                    sa.step(|s| s.modify(o, |v: &mut i64| *v += 1)).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    Arc::try_unwrap(sa).unwrap().end().unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 40);
}

// ---------------------------------------------------------------------
// Glued actions
// ---------------------------------------------------------------------

#[test]
fn glued_hand_over_protects_selected_objects_only() {
    let rt = rt_fast();
    let kept = rt.create_object(&0i64).unwrap();
    let dropped = rt.create_object(&0i64).unwrap();
    let chain = GluedChain::begin(&rt, 3).unwrap();
    chain
        .step(|s| {
            s.write(kept, &1i64)?;
            s.write(dropped, &1i64)?;
            s.hand_over(kept)
        })
        .unwrap();
    // The non-handed object is free immediately (fig. 5's improvement
    // over the serializing action, fig. 4b)...
    assert_eq!(rt.atomic(|a| a.read::<i64>(dropped)).unwrap(), 1);
    rt.atomic(|a| a.write(dropped, &5i64)).unwrap();
    // ...while the handed-over object is fenced.
    assert!(rt.atomic(|a| a.read::<i64>(kept)).is_err());
    chain
        .step(|s| {
            let v: i64 = s.read(kept)?;
            s.write(kept, &(v + 10))
        })
        .unwrap();
    chain.end().unwrap();
    assert_eq!(rt.read_committed::<i64>(kept).unwrap(), 11);
    assert_eq!(rt.read_committed::<i64>(dropped).unwrap(), 5);
}

#[test]
fn glued_chain_releases_rejected_objects_mid_chain() {
    // Fig. 9: slots rejected by a round become free before the chain
    // ends.
    let rt = rt_fast();
    let slots: Vec<_> = (0..4).map(|_| rt.create_object(&0u8).unwrap()).collect();
    let chain = GluedChain::begin(&rt, 4).unwrap();
    // Round 1: consider all slots, keep the first three.
    chain
        .step(|s| {
            for &slot in &slots {
                s.write(slot, &1u8)?;
            }
            for &slot in &slots[..3] {
                s.hand_over(slot)?;
            }
            Ok(())
        })
        .unwrap();
    // slots[3] is free already.
    assert!(rt.atomic(|a| a.read::<u8>(slots[3])).is_ok());
    assert!(rt.atomic(|a| a.read::<u8>(slots[0])).is_err());
    // Round 2: narrow to the first two.
    chain
        .step(|s| {
            for &slot in &slots[..2] {
                s.write(slot, &2u8)?;
                s.hand_over(slot)?;
            }
            Ok(())
        })
        .unwrap();
    // slots[2] — rejected by round 2 — is now free, mid-chain.
    assert!(rt.atomic(|a| a.read::<u8>(slots[2])).is_ok());
    assert!(rt.atomic(|a| a.read::<u8>(slots[1])).is_err());
    // Round 3: settle on slot 0.
    chain
        .step(|s| {
            s.write(slots[0], &9u8)?;
            s.hand_over(slots[0])?;
            Ok(())
        })
        .unwrap();
    assert!(rt.atomic(|a| a.read::<u8>(slots[1])).is_ok());
    chain.end().unwrap();
    assert!(rt.atomic(|a| a.read::<u8>(slots[0])).is_ok());
    assert_eq!(rt.read_committed::<u8>(slots[0]).unwrap(), 9);
}

#[test]
fn glued_step_effects_survive_later_failures() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let chain = GluedChain::begin(&rt, 2).unwrap();
    chain
        .step(|s| {
            s.write(o, &1i64)?;
            s.hand_over(o)
        })
        .unwrap();
    let err = chain.step(|s| {
        s.write(o, &2i64)?;
        Err::<(), _>(ActionError::failed("step 2 fails"))
    });
    assert!(err.is_err());
    chain.abandon();
    // Step 1's effect is permanent; step 2's was undone.
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
    assert_eq!(rt.read_current::<i64>(o).unwrap(), 1);
}

#[test]
fn glued_failed_step_can_be_retried() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let chain = GluedChain::begin(&rt, 2).unwrap();
    chain
        .step(|s| {
            s.write(o, &1i64)?;
            s.hand_over(o)
        })
        .unwrap();
    let _ = chain.step(|s| {
        s.write(o, &2i64)?;
        Err::<(), _>(ActionError::failed("transient"))
    });
    // Retry succeeds; the hand-over fence was unaffected by the abort.
    chain
        .step(|s| {
            let v: i64 = s.read(o)?;
            s.write(o, &(v + 2))
        })
        .unwrap();
    chain.end().unwrap();
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 3);
}

#[test]
fn glued_capacity_is_enforced() {
    let rt = Runtime::builder().build();
    let chain = GluedChain::begin(&rt, 1).unwrap();
    assert_eq!(chain.remaining_capacity(), 2);
    chain.step(|_| Ok(())).unwrap();
    chain.step(|_| Ok(())).unwrap();
    assert_eq!(chain.remaining_capacity(), 0);
    let err = chain.step(|_| Ok(())).unwrap_err();
    assert!(matches!(err, ActionError::Failed(_)));
    chain.end().unwrap();
}

#[test]
fn glued_final_step_cannot_hand_over() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0u8).unwrap();
    let chain = GluedChain::begin(&rt, 1).unwrap();
    chain
        .step(|s| {
            s.write(o, &1u8)?;
            s.hand_over(o)
        })
        .unwrap();
    let err = chain.step(|s| s.hand_over(o)).unwrap_err();
    assert!(matches!(err, ActionError::Failed(_)));
    chain.end().unwrap();
}

#[test]
fn glued_group_concurrent_contributors_and_receivers() {
    // Fig. 6: A1..An glued to B1..Bn through a shared glue colour.
    let rt = rt_fast();
    let objects: Vec<_> = (0..4)
        .map(|i| rt.create_object(&(i as i64)).unwrap())
        .collect();
    let group = Arc::new(GluedGroup::begin(&rt).unwrap());
    let contributors: Vec<_> = objects
        .iter()
        .map(|&o| {
            let group = Arc::clone(&group);
            std::thread::spawn(move || {
                group
                    .contribute(|s| {
                        s.modify(o, |v: &mut i64| *v += 100)?;
                        s.hand_over(o)
                    })
                    .unwrap();
            })
        })
        .collect();
    for t in contributors {
        t.join().unwrap();
    }
    // All handed-over objects are fenced against strangers...
    for &o in &objects {
        assert!(rt.atomic(|a| a.read::<i64>(o)).is_err());
    }
    // ...but receivers inside the group can process them concurrently.
    let receivers: Vec<_> = objects
        .iter()
        .map(|&o| {
            let group = Arc::clone(&group);
            std::thread::spawn(move || {
                group
                    .receive(|s| s.modify(o, |v: &mut i64| *v *= 2))
                    .unwrap();
            })
        })
        .collect();
    for t in receivers {
        t.join().unwrap();
    }
    Arc::try_unwrap(group).unwrap().end().unwrap();
    for (i, &o) in objects.iter().enumerate() {
        assert_eq!(rt.read_committed::<i64>(o).unwrap(), (i as i64 + 100) * 2);
    }
}

// ---------------------------------------------------------------------
// Independent actions
// ---------------------------------------------------------------------

#[test]
fn sync_independent_survives_invoker_abort() {
    let rt = Runtime::builder().build();
    let ledger = rt.create_object(&0u32).unwrap();
    let main = rt.create_object(&0u32).unwrap();
    let result: Result<(), ActionError> = rt.atomic(|a| {
        a.write(main, &1u32)?;
        independent_sync(a, |b| b.modify(ledger, |n: &mut u32| *n += 1))?;
        Err(ActionError::failed("invoker aborts"))
    });
    assert!(result.is_err());
    assert_eq!(rt.read_committed::<u32>(ledger).unwrap(), 1); // survives
    assert_eq!(rt.read_committed::<u32>(main).unwrap(), 0); // undone
}

#[test]
fn sync_independent_failure_leaves_invoker_free_to_continue() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0u32).unwrap();
    rt.atomic(|a| {
        let failed = independent_sync(a, |_b| {
            Err::<(), _>(ActionError::failed("independent action aborts"))
        });
        assert!(failed.is_err());
        // Fig. 7a: "subsequent activities of A can be made to depend
        // upon the outcome of B" — here A chooses to continue.
        a.write(o, &1u32)
    })
    .unwrap();
    assert_eq!(rt.read_committed::<u32>(o).unwrap(), 1);
}

#[test]
fn async_independent_runs_concurrently_and_survives() {
    let rt = Runtime::builder().build();
    let board = rt.create_object(&0u32).unwrap();
    let started = Arc::new(AtomicBool::new(false));
    let result: Result<(), ActionError> = rt.atomic(|a| {
        let flag = Arc::clone(&started);
        let handle = independent_async(a.runtime(), move |b| {
            flag.store(true, Ordering::SeqCst);
            b.modify(board, |n: &mut u32| *n += 1)
        });
        handle.join()?;
        Err(ActionError::failed("invoker aborts after posting"))
    });
    assert!(result.is_err());
    assert!(started.load(Ordering::SeqCst));
    assert_eq!(rt.read_committed::<u32>(board).unwrap(), 1);
}

#[test]
fn fig13_conflicting_access_is_detected_not_hung() {
    // The invoker holds a write lock; the "independent" action needs the
    // same object. Two true top-level actions would deadlock (fig. 13a);
    // the coloured implementation detects the cycle and victimises the
    // invoked action.
    let rt = Runtime::builder()
        .config(RuntimeConfig {
            lock_timeout: Some(Duration::from_secs(5)),
        })
        .build();
    let o = rt.create_object(&0i64).unwrap();
    let outcome = rt.atomic(|a| {
        a.write(o, &1i64)?;
        let inner = independent_sync(a, |b| b.write(o, &2i64));
        // The inner action must have failed as a deadlock victim —
        // quickly, not by timeout.
        match inner {
            Err(e) if e.is_deadlock_victim() => Ok("detected"),
            other => Ok(match other {
                Ok(()) => "granted",
                Err(_) => "other-error",
            }),
        }
    });
    assert_eq!(outcome.unwrap(), "detected");
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 1);
}

#[test]
fn probe_conflict_reports_invoker_conflicts() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    rt.atomic(|a| {
        assert!(probe_conflict(a, o, LockMode::Read)?);
        a.write(o, &1i64)?;
        // Now a would-be independent action cannot touch o.
        assert!(!probe_conflict(a, o, LockMode::Read)?);
        assert!(!probe_conflict(a, o, LockMode::Write)?);
        Ok(())
    })
    .unwrap();
}

#[test]
fn n_level_independence_at_level_one() {
    // Fig. 14/15: E invoked inside B survives B's abort but not A's.
    let rt = Runtime::builder().build();
    let e_obj = rt.create_object(&0i64).unwrap();

    // Case 1: B aborts — E survives.
    let blue = rt.universe().colour("outer-a1");
    let red = rt.universe().colour("inner-b1");
    let a = rt
        .begin_top(chroma_base::ColourSet::from_iter([red, blue]))
        .unwrap();
    {
        let result: Result<(), ActionError> =
            rt.run_nested(a, chroma_base::ColourSet::single(red), red, |b| {
                independent_at_level(b, 1, |e| e.write(e_obj, &1i64))?;
                Err(ActionError::failed("B aborts"))
            });
        assert!(result.is_err());
    }
    // E's effect is held by A (not yet permanent), not undone by B.
    assert_eq!(rt.read_current::<i64>(e_obj).unwrap(), 1);
    rt.commit(a).unwrap();
    assert_eq!(rt.read_committed::<i64>(e_obj).unwrap(), 1);

    // Case 2: A aborts after B committed — E is undone.
    let e_obj2 = rt.create_object(&0i64).unwrap();
    let blue2 = rt.universe().colour("outer-a2");
    let red2 = rt.universe().colour("inner-b2");
    let a2 = rt
        .begin_top(chroma_base::ColourSet::from_iter([red2, blue2]))
        .unwrap();
    rt.run_nested(a2, chroma_base::ColourSet::single(red2), red2, |b| {
        independent_at_level(b, 1, |e| e.write(e_obj2, &1i64))
    })
    .unwrap();
    rt.abort(a2);
    assert_eq!(rt.read_current::<i64>(e_obj2).unwrap(), 0);
}

#[test]
fn independent_at_level_zero_is_plain_nesting() {
    let rt = Runtime::builder().build();
    let o = rt.create_object(&0i64).unwrap();
    let result: Result<(), ActionError> = rt.atomic(|a| {
        independent_at_level(a, 0, |n| n.write(o, &5i64))?;
        Err(ActionError::failed("parent aborts"))
    });
    assert!(result.is_err());
    assert_eq!(rt.read_committed::<i64>(o).unwrap(), 0); // undone: nested
}

#[test]
fn compensation_fires_on_invoker_abort() {
    let rt = Runtime::builder().build();
    let board = rt.create_object(&Vec::<String>::new()).unwrap();
    let result: Result<(), ActionError> = rt.atomic(|a| {
        let ((), comp) = independent_with_compensation(
            a,
            |post| {
                post.modify(board, |b: &mut Vec<String>| {
                    b.push("meeting at 10".to_owned());
                })
            },
            move |retract| {
                retract.modify(board, |b: &mut Vec<String>| {
                    b.push("CANCELLED: meeting at 10".to_owned());
                })
            },
        )?;
        // The main work fails; fire the compensation before aborting.
        comp.fire().join()?;
        Err(ActionError::failed("main work failed"))
    });
    assert!(result.is_err());
    let posts: Vec<String> = rt.read_committed(board).unwrap();
    assert_eq!(posts.len(), 2);
    assert!(posts[1].starts_with("CANCELLED"));
}

#[test]
fn compensation_discarded_on_invoker_commit() {
    let rt = Runtime::builder().build();
    let board = rt.create_object(&Vec::<String>::new()).unwrap();
    rt.atomic(|a| {
        let ((), comp) = independent_with_compensation(
            a,
            |post| post.modify(board, |b: &mut Vec<String>| b.push("hello".to_owned())),
            move |retract| retract.modify(board, |b: &mut Vec<String>| b.push("undo".to_owned())),
        )?;
        comp.discard();
        Ok(())
    })
    .unwrap();
    let posts: Vec<String> = rt.read_committed(board).unwrap();
    assert_eq!(posts, vec!["hello".to_owned()]);
}
