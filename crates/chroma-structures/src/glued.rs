//! Glued actions (§3.2), implemented with the fig. 12 colour scheme.
//!
//! Gluing passes locks on a *selected subset* of objects atomically from
//! one top-level action to the next, while every other lock is released
//! at the first action's commit. This gets the concurrency of separate
//! top-level actions (fig. 4a) without the unprotected gap, and avoids
//! the over-locking of a serializing action (fig. 4b), which would fence
//! everything until the last step ends.
//!
//! **Single gap (fig. 12):** a control action G with a private glue
//! colour encloses A (glue + private update colour) and B (private
//! update colour). A writes everything in its update colour and
//! additionally exclusive-read-locks the hand-over set in the glue
//! colour; at A's commit the update locks are released (A is outermost
//! for them — effects permanent, non-handed objects free) while the glue
//! fences pass to G. B, nested in G, may then acquire write locks on the
//! handed-over objects — G's exclusive-read fence blocks everyone else.
//!
//! **Chains (fig. 9):** the diary example needs slot locks released as
//! soon as a round rejects them. One wrapper per *gap* achieves this,
//! with wrappers nested outermost-first: `F_n ⊃ … ⊃ F_1`, step `I_1`,
//! `I_2` inside `F_1`, and `I_{i+1}` inside `F_i`. When `I_{i+1}`
//! commits, `F_i` commits too: `F_i` is outermost for gap colour `g_i`,
//! so *every* gap-i fence is released — objects the new step re-fenced
//! are protected by `g_{i+1}` (held by `F_{i+1}`), and rejected objects
//! become free immediately, mid-chain. This is the tree-shaped
//! realisation of the paper's "entries in diaries are not unnecessarily
//! kept locked".

use chroma_base::{ActionId, Colour, ColourSet, LockMode, ObjectId};
use chroma_core::{ActionError, ActionScope, Runtime};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// A chain of glued top-level actions with per-gap hand-over.
///
/// Each [`step`](GluedChain::step) is a top-level action for permanence.
/// Inside a step, [`GluedStep::hand_over`] fences an object for the next
/// step; everything else the step touched becomes available to other
/// actions the moment the step commits.
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
/// use chroma_structures::GluedChain;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let kept = rt.create_object(&0i64)?;
/// let dropped = rt.create_object(&0i64)?;
///
/// let chain = GluedChain::begin(&rt, 4)?;
/// chain.step(|s| {
///     s.write(kept, &1i64)?;
///     s.write(dropped, &1i64)?;
///     s.hand_over(kept)?; // only `kept` stays locked after this step
///     Ok(())
/// })?;
/// // `dropped` is free here; `kept` is fenced for the next step.
/// chain.step(|s| {
///     let v: i64 = s.read(kept)?;
///     s.write(kept, &(v + 1))
/// })?;
/// chain.end()?;
/// assert_eq!(rt.read_committed::<i64>(kept)?, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GluedChain {
    rt: Runtime,
    /// Gap wrappers, outermost first: `wrappers[0]` is `F_capacity`,
    /// the last element is `F_1`. Entries are popped (committed) from
    /// the back as gaps close.
    state: parking_lot::Mutex<ChainState>,
}

#[derive(Debug)]
struct ChainState {
    /// `(wrapper action, gap colour)`, innermost (next to close) last.
    wrappers: Vec<(ActionId, Colour)>,
    /// Steps run so far.
    steps: usize,
    finished: bool,
}

impl GluedChain {
    /// Begins a glued chain able to run up to `capacity` steps.
    ///
    /// `capacity` gap wrappers (and gap colours) are pre-allocated,
    /// nested outermost-first; unused ones are committed (empty) by
    /// [`end`](GluedChain::end). Capacity is bounded by the 64-colour
    /// universe budget.
    ///
    /// # Errors
    ///
    /// Colour exhaustion or action bookkeeping failures.
    pub fn begin(rt: &Runtime, capacity: usize) -> Result<Self, ActionError> {
        Self::begin_under(rt, None, capacity)
    }

    /// Begins a glued chain nested under `parent`.
    ///
    /// # Errors
    ///
    /// Colour exhaustion or action bookkeeping failures.
    pub fn begin_under(
        rt: &Runtime,
        parent: Option<ActionId>,
        capacity: usize,
    ) -> Result<Self, ActionError> {
        let mut wrappers = Vec::with_capacity(capacity);
        let mut current_parent = parent;
        // Outermost wrapper first: F_capacity, …, F_1.
        for _ in 0..capacity {
            let gap = rt.universe().fresh()?;
            let wrapper = match current_parent {
                Some(p) => rt.begin_nested(p, ColourSet::single(gap))?,
                None => rt.begin_top(ColourSet::single(gap))?,
            };
            wrappers.push((wrapper, gap));
            current_parent = Some(wrapper);
        }
        Ok(GluedChain {
            rt: rt.clone(),
            state: parking_lot::Mutex::new(ChainState {
                wrappers,
                steps: 0,
                finished: false,
            }),
        })
    }

    /// Returns the number of steps run so far.
    #[must_use]
    pub fn steps_run(&self) -> usize {
        self.state.lock().steps
    }

    /// Returns how many further steps the chain can run.
    ///
    /// A chain begun with capacity `n` runs up to `n + 1` steps: the
    /// innermost wrapper hosts the first two steps, every other wrapper
    /// one; the final step cannot hand anything over.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        let state = self.state.lock();
        if state.finished || state.wrappers.is_empty() {
            return 0;
        }
        if state.steps <= 1 {
            state.wrappers.len() + 1 - state.steps
        } else {
            state.wrappers.len()
        }
    }

    /// Runs the next step of the chain as a top-level (for permanence)
    /// action.
    ///
    /// On commit, objects handed over by the *previous* step that this
    /// step did not re-fence become available to every other action; the
    /// objects this step [`hand_over`](GluedStep::hand_over)s stay
    /// fenced for the next step.
    ///
    /// # Errors
    ///
    /// [`ActionError::Failed`] if capacity is exhausted; otherwise
    /// propagates the body's error after aborting the step (the chain
    /// stays usable — a failed step may be retried).
    pub fn step<R>(
        &self,
        body: impl FnOnce(&mut GluedStep<'_, '_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let (host, gap_colour, closes_gap) = {
            let state = self.state.lock();
            if state.finished {
                return Err(ActionError::failed("glued chain already ended"));
            }
            // The host is always the innermost remaining wrapper: steps 1
            // and 2 run in F_1; once step i+1 commits, F_i closes, so
            // step i+2 finds F_{i+1} innermost.
            let &(host, host_gap) = state.wrappers.last().ok_or_else(cap_err)?;
            let first_step = state.steps == 0;
            // The colour this step fences hand-overs in: the first step
            // uses its host's own gap (F_1 inherits it); later steps use
            // the next wrapper out (F_{i+1}), since their host closes
            // right after they commit. The final possible step has no
            // next gap.
            let gap_colour = if first_step {
                Some(host_gap)
            } else {
                let n = state.wrappers.len();
                n.checked_sub(2).map(|p| state.wrappers[p].1)
            };
            (host, gap_colour, !first_step)
        };

        let update = self.rt.universe().fresh()?;
        let mut colours = ColourSet::single(update);
        if let Some(gap) = gap_colour {
            colours = colours.with(gap);
        }
        let result = self.rt.run_nested(host, colours, update, |scope| {
            let mut step = GluedStep {
                scope,
                gap: gap_colour,
                update,
            };
            body(&mut step)
        });
        self.rt.universe().release(update);

        match result {
            Ok(value) => {
                let mut state = self.state.lock();
                state.steps += 1;
                if closes_gap {
                    // Close the gap wrapper: releases the previous gap's
                    // fences (rejected objects become free mid-chain).
                    let (wrapper, colour) =
                        state.wrappers.pop().expect("host wrapper still present");
                    self.rt.commit(wrapper)?;
                    self.rt.universe().release(colour);
                }
                Ok(value)
            }
            Err(error) => Err(error),
        }
    }

    /// Ends the chain: commits every remaining wrapper (innermost
    /// first), releasing all fences.
    ///
    /// # Errors
    ///
    /// Propagates commit bookkeeping failures.
    pub fn end(self) -> Result<(), ActionError> {
        let mut state = self.state.lock();
        state.finished = true;
        while let Some((wrapper, colour)) = state.wrappers.pop() {
            self.rt.commit(wrapper)?;
            self.rt.universe().release(colour);
        }
        Ok(())
    }

    /// Abandons the chain: aborts every remaining wrapper. Effects of
    /// committed steps remain permanent; only fences are released.
    pub fn abandon(self) {
        let mut state = self.state.lock();
        state.finished = true;
        // Abort the outermost wrapper: children abort recursively.
        if let Some(&(outermost, _)) = state.wrappers.first() {
            self.rt.abort(outermost);
        }
        for (_, colour) in state.wrappers.drain(..) {
            self.rt.universe().release(colour);
        }
    }
}

impl Drop for GluedChain {
    fn drop(&mut self) {
        let mut state = self.state.lock();
        if !state.finished {
            state.finished = true;
            if let Some(&(outermost, _)) = state.wrappers.first() {
                self.rt.abort(outermost);
            }
            for (_, colour) in state.wrappers.drain(..) {
                self.rt.universe().release(colour);
            }
        }
    }
}

fn cap_err() -> ActionError {
    ActionError::failed("glued chain capacity exhausted")
}

/// Operation surface of one glued-chain step.
///
/// Reads and writes use the step's private update colour (released —
/// and made permanent — at the step's commit).
/// [`hand_over`](GluedStep::hand_over) additionally fences an object in the gap
/// colour so it passes, still locked, to the next step.
#[derive(Debug)]
pub struct GluedStep<'a, 'rt> {
    scope: &'a mut ActionScope<'rt>,
    gap: Option<Colour>,
    update: Colour,
}

impl GluedStep<'_, '_> {
    /// Returns the underlying action id.
    #[must_use]
    pub fn id(&self) -> ActionId {
        self.scope.id()
    }

    /// Reads an object in the step's update colour.
    ///
    /// # Errors
    ///
    /// Lock, object or codec failures.
    pub fn read<T: DeserializeOwned>(&self, object: ObjectId) -> Result<T, ActionError> {
        self.scope.read_in(self.update, object)
    }

    /// Writes an object in the step's update colour.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn write<T: Serialize + ?Sized>(
        &self,
        object: ObjectId,
        value: &T,
    ) -> Result<(), ActionError> {
        self.scope.write_in(self.update, object, value)
    }

    /// Creates a new object inside the step.
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn create<T: Serialize + ?Sized>(&self, value: &T) -> Result<ObjectId, ActionError> {
        self.scope.create_in(self.update, value)
    }

    /// Fences `object` in the gap colour so its lock passes atomically
    /// to the next step of the chain.
    ///
    /// # Errors
    ///
    /// [`ActionError::Failed`] if this is the chain's final possible
    /// step (no next gap exists); lock failures otherwise.
    pub fn hand_over(&self, object: ObjectId) -> Result<(), ActionError> {
        let gap = self
            .gap
            .ok_or_else(|| ActionError::failed("no next gap: chain capacity reached"))?;
        self.scope.lock(gap, object, LockMode::ExclusiveRead)
    }

    /// Reads, transforms and writes back an object.
    ///
    /// # Errors
    ///
    /// Lock, object or codec failures.
    pub fn modify<T, R>(
        &self,
        object: ObjectId,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ActionError>
    where
        T: DeserializeOwned + Serialize,
    {
        let mut value: T = self.read(object)?;
        let result = f(&mut value);
        self.write(object, &value)?;
        Ok(result)
    }
}

/// Concurrent glued actions (fig. 6): several contributor actions hand
/// objects over, through a single shared glue colour, to receiver
/// actions that run after them.
///
/// The scheme is the paper's: "giving A1..An colours red and blue and
/// enclosing them within a red coloured action".
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
/// use chroma_structures::GluedGroup;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let o = rt.create_object(&1i64)?;
/// let group = GluedGroup::begin(&rt)?;
/// group.contribute(|s| {
///     s.write(o, &2i64)?;
///     s.hand_over(o)
/// })?;
/// group.receive(|s| {
///     let v: i64 = s.read(o)?;
///     s.write(o, &(v * 10))
/// })?;
/// group.end()?;
/// assert_eq!(rt.read_committed::<i64>(o)?, 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GluedGroup {
    rt: Runtime,
    control: ActionId,
    glue: Colour,
    finished: parking_lot::Mutex<bool>,
}

impl GluedGroup {
    /// Begins a glued group as a top-level control action.
    ///
    /// # Errors
    ///
    /// Colour exhaustion or action bookkeeping failures.
    pub fn begin(rt: &Runtime) -> Result<Self, ActionError> {
        let glue = rt.universe().fresh()?;
        let control = rt.begin_top(ColourSet::single(glue))?;
        Ok(GluedGroup {
            rt: rt.clone(),
            control,
            glue,
            finished: parking_lot::Mutex::new(false),
        })
    }

    /// Returns the control action's id (for tests and metrics).
    #[must_use]
    pub fn control_id(&self) -> ActionId {
        self.control
    }

    /// Runs a contributor action (an `A_i` of fig. 6): top-level for
    /// permanence, able to [`hand_over`](GluedStep::hand_over) objects
    /// into the group's glue. Safe to call from several threads.
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting the contributor.
    pub fn contribute<R>(
        &self,
        body: impl FnOnce(&mut GluedStep<'_, '_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let update = self.rt.universe().fresh()?;
        let colours = ColourSet::from_iter([self.glue, update]);
        let result = self.rt.run_nested(self.control, colours, update, |scope| {
            let mut step = GluedStep {
                scope,
                gap: Some(self.glue),
                update,
            };
            body(&mut step)
        });
        self.rt.universe().release(update);
        result
    }

    /// Runs a receiver action (a `B_i` of fig. 6): top-level for
    /// permanence, able to lock the handed-over objects because it is
    /// nested inside the fence-holding control. Safe to call from
    /// several threads.
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting the receiver.
    pub fn receive<R>(
        &self,
        body: impl FnOnce(&mut GluedStep<'_, '_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let update = self.rt.universe().fresh()?;
        let result = self
            .rt
            .run_nested(self.control, ColourSet::single(update), update, |scope| {
                let mut step = GluedStep {
                    scope,
                    gap: None,
                    update,
                };
                body(&mut step)
            });
        self.rt.universe().release(update);
        result
    }

    /// Ends the group: commits the control action, releasing all glue
    /// fences.
    ///
    /// # Errors
    ///
    /// Propagates commit bookkeeping failures.
    pub fn end(self) -> Result<(), ActionError> {
        *self.finished.lock() = true;
        let result = self.rt.commit(self.control);
        self.rt.universe().release(self.glue);
        result
    }

    /// Abandons the group: aborts the control action. Committed
    /// contributors'/receivers' effects remain permanent.
    pub fn abandon(self) {
        *self.finished.lock() = true;
        self.rt.abort(self.control);
        self.rt.universe().release(self.glue);
    }
}

impl Drop for GluedGroup {
    fn drop(&mut self) {
        let mut finished = self.finished.lock();
        if !*finished {
            *finished = true;
            self.rt.abort(self.control);
            self.rt.universe().release(self.glue);
        }
    }
}
