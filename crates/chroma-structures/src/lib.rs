//! The paper's action structures (§3), implemented uniformly on
//! multi-coloured actions (§5).
//!
//! | Structure | Paper | Type / function |
//! |---|---|---|
//! | Serializing action | §3.1, figs. 3, 11 | [`SerializingAction`] |
//! | Glued actions (chain) | §3.2, figs. 5, 9, 12 | [`GluedChain`] |
//! | Glued actions (concurrent) | fig. 6 | [`GluedGroup`] |
//! | Top-level independent (sync) | §3.3, figs. 7a, 13 | [`independent_sync`] |
//! | Top-level independent (async) | fig. 7b | [`independent_async`] |
//! | N-level independent | figs. 14–15 | [`independent_at_level`] |
//! | Automatic colour assignment | §6 | [`compiler`] |
//! | Compensating chain (further work, §3.4) | §3.4 | [`CompensatingChain`] |
//!
//! Conventional (single-colour) atomic and nested actions are provided
//! directly by [`chroma_core::Runtime::atomic`] and
//! [`chroma_core::ActionScope::nested`]; a coloured system in which all
//! actions share one colour *is* the conventional system (§5.1).
//!
//! # Choosing a structure
//!
//! * Use a plain atomic action when the whole job is short and must be
//!   all-or-nothing.
//! * Use a **serializing action** when the job splits into steps whose
//!   completed work must survive later failures, but no other action
//!   may interpose between steps (distributed make, fig. 8).
//! * Use a **glued chain** when, additionally, each step should release
//!   everything it no longer needs (diary scheduling, fig. 9).
//! * Use an **independent action** for side ledgers that must not be
//!   rolled back with the invoker: bulletin boards, name servers,
//!   billing (§4 i–iii).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compensating;
pub mod compiler;
mod glued;
mod independent;
mod serializing;

pub use compensating::{CompensatingChain, UnwindReport};
pub use glued::{GluedChain, GluedGroup, GluedStep};
pub use independent::{
    independent_async, independent_at_level, independent_sync, independent_with_compensation,
    probe_conflict, Compensation, IndependentHandle,
};
pub use serializing::{SerialStep, SerializingAction};
