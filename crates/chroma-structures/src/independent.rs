//! Top-level and n-level independent actions (§3.3, figs. 7, 13–15).
//!
//! A top-level independent action is invoked from inside another action
//! but commits or aborts independently of its invoker. The coloured
//! implementation (fig. 13) simply gives the invoked action a fresh
//! colour disjoint from the invoker's: it is then outermost for its own
//! colour, so its commit is immediately permanent, and the invoker's
//! abort never touches its effects.
//!
//! * **Synchronous** invocation runs the independent action to
//!   completion before the invoker continues; the invoker observes the
//!   outcome and may choose to abort itself (fig. 7a). The fig. 13
//!   caveat applies: if the invoked action needs conflicting access to
//!   objects locked by the invoker, the pair would deadlock — chroma
//!   registers the invoker's wait with the deadlock detector, so the
//!   invoked action is victimised and the conflict surfaces as an error
//!   instead of a hang.
//! * **Asynchronous** invocation (fig. 7b) runs the independent action
//!   on its own thread as a detached top-level action; the invoker may
//!   await its outcome via the returned handle or simply proceed.
//! * **N-level** independence (figs. 14–15) falls out of colour choice:
//!   an action whose colour is possessed by the k-th enclosing ancestor
//!   is independent of everything below that ancestor. The
//!   [`independent_at_level`] helper expresses this directly.

use chroma_base::{ColourSet, LockMode, ObjectId};
use chroma_core::{ActionError, ActionScope, Runtime};

/// Runs `body` as a **synchronous top-level independent action** invoked
/// from `scope` (fig. 7a / fig. 13b).
///
/// The independent action is nested in the invoker's tree position but
/// coloured with a fresh colour, so:
///
/// * if it commits, its effects are immediately permanent — a later
///   abort of the invoker does not undo them;
/// * if it aborts, the invoker is unaffected and decides for itself what
///   to do with the returned error.
///
/// # Errors
///
/// Propagates the body's error (after the independent action aborted).
/// The invoker stays active either way.
///
/// # Examples
///
/// ```
/// use chroma_core::{ActionError, Runtime};
/// use chroma_structures::independent_sync;
///
/// # fn main() -> Result<(), ActionError> {
/// let rt = Runtime::builder().build();
/// let audit = rt.create_object(&0u32)?;
/// let result: Result<(), ActionError> = rt.atomic(|a| {
///     independent_sync(a, |log| log.modify(audit, |n: &mut u32| *n += 1))?;
///     Err(ActionError::failed("main work failed"))
/// });
/// assert!(result.is_err());
/// // The audit record survived the invoker's abort.
/// assert_eq!(rt.read_committed::<u32>(audit)?, 1);
/// # Ok(())
/// # }
/// ```
pub fn independent_sync<R>(
    scope: &mut ActionScope<'_>,
    body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
) -> Result<R, ActionError> {
    let rt = scope.runtime().clone();
    let colour = rt.universe().fresh()?;
    let invoker = scope.id();
    let child = rt.begin_nested(invoker, ColourSet::single(colour))?;
    // The invoker's thread now executes the child: record the implied
    // wait so a child blocked on the invoker's locks is recognised as a
    // deadlock (fig. 13 caveat) rather than hanging.
    rt.add_external_wait(invoker, child);
    let mut child_scope = match rt.scope(child) {
        Ok(scope) => scope,
        Err(e) => {
            rt.remove_external_wait(invoker, child);
            rt.universe().release(colour);
            return Err(e);
        }
    };
    let result = match body(&mut child_scope) {
        Ok(value) => rt.commit(child).map(|()| value),
        Err(error) => {
            rt.abort(child);
            Err(error)
        }
    };
    rt.remove_external_wait(invoker, child);
    rt.universe().release(colour);
    result
}

/// Handle to an asynchronously invoked independent action (fig. 7b).
///
/// The invoker may [`join`](IndependentHandle::join) to observe the
/// outcome, or drop the handle to let the action finish on its own
/// (truly fire-and-forget).
#[derive(Debug)]
pub struct IndependentHandle<R> {
    thread: Option<std::thread::JoinHandle<Result<R, ActionError>>>,
}

impl<R> IndependentHandle<R> {
    /// Waits for the independent action and returns its outcome.
    ///
    /// # Errors
    ///
    /// The action's own error if it aborted, or
    /// [`ActionError::Failed`] if its thread panicked.
    pub fn join(mut self) -> Result<R, ActionError> {
        match self.thread.take().expect("thread not yet joined").join() {
            Ok(result) => result,
            Err(_) => Err(ActionError::failed("independent action panicked")),
        }
    }

    /// Returns `true` if the action has terminated (its outcome is ready
    /// to [`join`](IndependentHandle::join) without blocking).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.thread
            .as_ref()
            .is_none_or(std::thread::JoinHandle::is_finished)
    }
}

/// Invokes `body` as an **asynchronous top-level independent action**
/// (fig. 7b): a detached top-level action on its own thread, with a
/// fresh colour.
///
/// The invoking action — if any — continues immediately; the two commit
/// or abort independently. Used by the paper's bulletin-board and
/// name-server examples to publish updates that must not be undone by
/// the invoker's abort.
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
/// use chroma_structures::independent_async;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let o = rt.create_object(&0u32)?;
/// let handle = independent_async(&rt, move |a| a.write(o, &7u32));
/// handle.join()?;
/// assert_eq!(rt.read_committed::<u32>(o)?, 7);
/// # Ok(())
/// # }
/// ```
pub fn independent_async<R, F>(rt: &Runtime, body: F) -> IndependentHandle<R>
where
    R: Send + 'static,
    F: FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError> + Send + 'static,
{
    let rt = rt.clone();
    let thread = std::thread::spawn(move || {
        let colour = rt.universe().fresh()?;
        let result = rt.run_top(ColourSet::single(colour), colour, body);
        rt.universe().release(colour);
        result
    });
    IndependentHandle {
        thread: Some(thread),
    }
}

/// Runs `body` as an action independent of its `level` closest
/// enclosing ancestors (figs. 14–15).
///
/// `level = 0` is a plain nested action (same colours as the invoker);
/// `level` ≥ the nesting depth is a fully independent top-level action.
/// In between, the action is coloured with a colour possessed by the
/// ancestor `level` steps up — fig. 15's action E (coloured blue, run
/// inside red B, inside red+blue A) is `independent_at_level(b, 1, …)`:
/// B's abort does not undo E, but A's abort does.
///
/// The implementation allocates a fresh colour and *registers it* on the
/// target ancestor... it cannot: colour sets are statically assigned at
/// begin time. Instead it reuses one of the target ancestor's own
/// colours that no intermediate ancestor possesses; if every colour of
/// the target is also held by an intermediate ancestor, independence at
/// exactly that level is unrepresentable and an error is returned —
/// assign the outer action a private colour at creation (the automatic
/// compiler in [`crate::compiler`] always does).
///
/// # Errors
///
/// [`ActionError::Failed`] if no suitable colour exists; otherwise the
/// body's error after the child aborted.
pub fn independent_at_level<R>(
    scope: &mut ActionScope<'_>,
    level: usize,
    body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
) -> Result<R, ActionError> {
    if level == 0 {
        return scope.nested(body);
    }
    let rt = scope.runtime().clone();
    // Find the ancestor `level` steps up and a colour of theirs not
    // possessed by any intermediate ancestor.
    let mut cursor = scope.id();
    let mut blocked = ColourSet::EMPTY; // colours of intermediates (and self)
    for _ in 0..level {
        blocked = blocked.union(
            rt.action_colours(cursor)
                .ok_or(ActionError::NotActive(cursor))?,
        );
        match rt.action_parent(cursor) {
            Some(parent) => cursor = parent,
            None => {
                // Ran out of ancestors: fully independent.
                return independent_sync(scope, body);
            }
        }
    }
    let target_colours = rt
        .action_colours(cursor)
        .ok_or(ActionError::NotActive(cursor))?;
    let usable = target_colours.minus(blocked);
    let colour = usable.iter().next().ok_or_else(|| {
        ActionError::failed(
            "no colour distinguishes the target ancestor from intermediates; \
             give it a private colour",
        )
    })?;
    let invoker = scope.id();
    let child = rt.begin_nested(invoker, ColourSet::single(colour))?;
    rt.add_external_wait(invoker, child);
    let result = (|| {
        let mut child_scope = rt.scope(child)?;
        match body(&mut child_scope) {
            Ok(value) => rt.commit(child).map(|()| value),
            Err(error) => {
                rt.abort(child);
                Err(error)
            }
        }
    })();
    rt.remove_external_wait(invoker, child);
    result
}

/// A compensation hook: registers `compensation` to run as an
/// asynchronous independent action if `body` (run as a synchronous
/// independent action) committed but the *invoker* subsequently needs to
/// undo it.
///
/// The paper leaves compensation as further work (§3.4) but notes the
/// bulletin-board example "may well need to invoke a compensating
/// top-level action" when the invoker aborts. This helper implements
/// the minimal pattern: run the independent action now, and return a
/// [`Compensation`] the caller fires (or discards) once the invoker's
/// own fate is known.
///
/// # Errors
///
/// Propagates the independent action's error; no compensation is
/// registered in that case.
pub fn independent_with_compensation<R>(
    scope: &mut ActionScope<'_>,
    body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
    compensation: impl FnOnce(&mut ActionScope<'_>) -> Result<(), ActionError> + Send + 'static,
) -> Result<(R, Compensation), ActionError> {
    let value = independent_sync(scope, body)?;
    Ok((
        value,
        Compensation {
            rt: scope.runtime().clone(),
            run: Some(Box::new(compensation)),
        },
    ))
}

/// A registered compensating action (see
/// [`independent_with_compensation`]).
pub struct Compensation {
    rt: Runtime,
    #[allow(clippy::type_complexity)]
    run: Option<Box<dyn FnOnce(&mut ActionScope<'_>) -> Result<(), ActionError> + Send>>,
}

impl Compensation {
    /// Fires the compensation as an asynchronous independent action and
    /// returns a handle to its outcome.
    #[must_use]
    pub fn fire(mut self) -> IndependentHandle<()> {
        let run = self.run.take().expect("compensation not yet consumed");
        independent_async(&self.rt, run)
    }

    /// Discards the compensation (the invoker committed; the
    /// independent action's effects should stand).
    pub fn discard(mut self) {
        self.run = None;
    }
}

impl std::fmt::Debug for Compensation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compensation")
            .field("armed", &self.run.is_some())
            .finish()
    }
}

/// Probes whether an independent action could take `mode` on `object`
/// without conflicting with its invoker — the fig. 13 "strictly
/// speaking independent" test.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the try-lock outcome (`Ok(true)` =
/// no conflict).
pub fn probe_conflict(
    scope: &mut ActionScope<'_>,
    object: ObjectId,
    mode: LockMode,
) -> Result<bool, ActionError> {
    let rt = scope.runtime().clone();
    let colour = rt.universe().fresh()?;
    // Probe as a *detached* top-level action: a nested probe would be
    // granted access to the invoker's own locks through the ancestor
    // rule, which is exactly the "not strictly independent" case the
    // probe exists to detect.
    let probe = rt.begin_top(ColourSet::single(colour))?;
    let outcome = rt
        .scope(probe)
        .and_then(|s| s.try_lock(colour, object, mode));
    rt.abort(probe);
    rt.universe().release(colour);
    match outcome {
        Ok(()) => Ok(true),
        Err(ActionError::Lock(_)) => Ok(false),
        Err(other) => Err(other),
    }
}
