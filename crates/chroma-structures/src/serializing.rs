//! Serializing actions (§3.1), implemented with the fig. 11 colour
//! scheme.
//!
//! A serializing action is "atomic with respect to concurrency but not
//! with respect to failures": its constituent steps are top-level for
//! permanence (each step's effects are flushed to stable storage at the
//! step's own commit), while the locks a step releases are retained by
//! the enclosing serializing action so no outside action can interpose
//! between steps.
//!
//! The colour scheme (fig. 11): the wrapper is a pure control action
//! with a private *fence* colour (the paper's red); each constituent
//! possesses the fence colour plus its own private *update* colour (the
//! paper's blue). Updates are written under the update colour — the
//! constituent is outermost for it, so they become permanent at the
//! constituent's commit. Every object a constituent touches is *also*
//! locked in the fence colour (exclusive-read for writes, read for
//! reads); those fence locks are inherited by the wrapper at the
//! constituent's commit, protecting the object until the wrapper ends.

use chroma_base::{ActionId, Colour, ColourSet, LockMode, ObjectId};
use chroma_core::{ActionError, ActionScope, Runtime};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// A serializing action: a sequence (or concurrent set) of top-level
/// steps whose locks are handed from each step to the wrapper and on to
/// later steps.
///
/// Possible outcomes for a two-step serializing action `A{B; C}` (§3.1):
///
/// 1. B aborts — nothing happened;
/// 2. B and C commit — both sets of effects are permanent, and become
///    visible together when [`end`](SerializingAction::end) releases the
///    fences;
/// 3. B commits, C aborts — B's effects alone are permanent (this is
///    exactly what plain nesting cannot express).
///
/// Dropping a `SerializingAction` without calling `end` aborts the
/// wrapper; effects of already-committed steps remain permanent (the
/// wrapper performs no writes of its own, so its abort only releases
/// the fences).
///
/// # Examples
///
/// ```
/// use chroma_core::Runtime;
/// use chroma_structures::SerializingAction;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let rt = Runtime::builder().build();
/// let o = rt.create_object(&0i64)?;
///
/// let sa = SerializingAction::begin(&rt)?;
/// sa.step(|s| s.write(o, &1i64))?; // permanent at this step's commit
/// sa.step(|s| {
///     let v: i64 = s.read(o)?;
///     s.write(o, &(v + 1))
/// })?;
/// sa.end()?;
/// assert_eq!(rt.read_committed::<i64>(o)?, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SerializingAction {
    rt: Runtime,
    control: ActionId,
    fence: Colour,
    finished: bool,
}

impl SerializingAction {
    /// Begins a serializing action as a top-level wrapper.
    ///
    /// # Errors
    ///
    /// Colour exhaustion or action bookkeeping failures.
    pub fn begin(rt: &Runtime) -> Result<Self, ActionError> {
        Self::begin_under(rt, None)
    }

    /// Begins a serializing action nested under `parent`.
    ///
    /// The wrapper still uses a fresh private fence colour, so the
    /// constituents remain top-level for permanence even though the
    /// wrapper is lexically nested.
    ///
    /// # Errors
    ///
    /// Colour exhaustion or action bookkeeping failures.
    pub fn begin_under(rt: &Runtime, parent: Option<ActionId>) -> Result<Self, ActionError> {
        let fence = rt.universe().fresh()?;
        let control = match parent {
            Some(parent) => rt.begin_nested(parent, ColourSet::single(fence))?,
            None => rt.begin_top(ColourSet::single(fence))?,
        };
        Ok(SerializingAction {
            rt: rt.clone(),
            control,
            fence,
            finished: false,
        })
    }

    /// Returns the wrapper action's id (for tests and metrics).
    #[must_use]
    pub fn control_id(&self) -> ActionId {
        self.control
    }

    /// Returns the fence colour (for tests and metrics).
    #[must_use]
    pub fn fence_colour(&self) -> Colour {
        self.fence
    }

    /// Runs one constituent step.
    ///
    /// The step is a top-level action for permanence: if the body
    /// returns `Ok`, its updates are immediately flushed to stable
    /// storage, and the locks on every object it touched pass to the
    /// wrapper. If the body returns `Err`, the step is aborted; earlier
    /// steps' effects are unaffected, and the serializing action may run
    /// further steps or end.
    ///
    /// Steps may run concurrently from several threads (fig. 8 uses
    /// this for distributed make): conflicting steps serialize on their
    /// object locks.
    ///
    /// # Errors
    ///
    /// Propagates the body's error after aborting the step.
    pub fn step<R>(
        &self,
        body: impl FnOnce(&mut SerialStep<'_, '_>) -> Result<R, ActionError>,
    ) -> Result<R, ActionError> {
        let update = self.rt.universe().fresh()?;
        let colours = ColourSet::from_iter([self.fence, update]);
        let result = self.rt.run_nested(self.control, colours, update, |scope| {
            let mut step = SerialStep {
                scope,
                fence: self.fence,
                update,
            };
            body(&mut step)
        });
        self.rt.universe().release(update);
        result
    }

    /// Ends the serializing action: commits the wrapper, releasing every
    /// retained fence lock and making the steps' effects visible to
    /// other actions simultaneously.
    ///
    /// # Errors
    ///
    /// Propagates commit bookkeeping failures.
    pub fn end(mut self) -> Result<(), ActionError> {
        self.finished = true;
        let result = self.rt.commit(self.control);
        self.rt.universe().release(self.fence);
        result
    }

    /// Abandons the serializing action: aborts the wrapper.
    ///
    /// Effects of committed steps are **not** undone — they were
    /// permanent at each step's commit; only the fences are released.
    /// This is the "not atomic with respect to failures" half of the
    /// structure.
    pub fn abandon(mut self) {
        self.finished = true;
        self.rt.abort(self.control);
        self.rt.universe().release(self.fence);
    }
}

impl Drop for SerializingAction {
    fn drop(&mut self) {
        if !self.finished {
            self.rt.abort(self.control);
            self.rt.universe().release(self.fence);
        }
    }
}

/// Operation surface of one serializing-action step.
///
/// Every access automatically maintains the fig. 11 fence: writes take a
/// write lock in the step's update colour *and* an exclusive-read lock
/// in the fence colour; reads take read locks in both. The fence locks
/// are what the wrapper retains between steps.
#[derive(Debug)]
pub struct SerialStep<'a, 'rt> {
    scope: &'a mut ActionScope<'rt>,
    fence: Colour,
    update: Colour,
}

impl SerialStep<'_, '_> {
    /// Returns the underlying action id.
    #[must_use]
    pub fn id(&self) -> ActionId {
        self.scope.id()
    }

    /// Returns the step's private update colour.
    #[must_use]
    pub fn update_colour(&self) -> Colour {
        self.update
    }

    /// Reads an object (read-locked in both update and fence colours).
    ///
    /// # Errors
    ///
    /// Lock, object or codec failures.
    pub fn read<T: DeserializeOwned>(&self, object: ObjectId) -> Result<T, ActionError> {
        self.scope.lock(self.fence, object, LockMode::Read)?;
        self.scope.read_in(self.update, object)
    }

    /// Writes an object (write-locked in the update colour,
    /// exclusive-read fenced in the fence colour).
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn write<T: Serialize + ?Sized>(
        &self,
        object: ObjectId,
        value: &T,
    ) -> Result<(), ActionError> {
        self.scope
            .lock(self.fence, object, LockMode::ExclusiveRead)?;
        self.scope.write_in(self.update, object, value)
    }

    /// Creates a new object inside the step (fenced like a write).
    ///
    /// # Errors
    ///
    /// Lock or codec failures.
    pub fn create<T: Serialize + ?Sized>(&self, value: &T) -> Result<ObjectId, ActionError> {
        let object = self.scope.create_in(self.update, value)?;
        self.scope
            .lock(self.fence, object, LockMode::ExclusiveRead)?;
        Ok(object)
    }

    /// Reads, transforms and writes back an object.
    ///
    /// # Errors
    ///
    /// Lock, object or codec failures.
    pub fn modify<T, R>(
        &self,
        object: ObjectId,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ActionError>
    where
        T: DeserializeOwned + Serialize,
    {
        let mut value: T = self.read(object)?;
        let result = f(&mut value);
        self.write(object, &value)?;
        Ok(result)
    }
}
