//! Automatic colour assignment for action structures.
//!
//! The paper's concluding remarks describe the intended workflow: "let
//! the application builder think in terms of the action structures of
//! section 3 and generate colour assignments automatically, thus
//! ensuring that coloured actions are used in a controlled manner."
//! This module is that generator.
//!
//! A [`Structure`] describes an application's action shape — work units,
//! nesting, serializing/glued composition, and n-level independence.
//! [`assign`] compiles it to an [`AssignedPlan`]: a tree of actions with
//! concrete colour sets, exactly reproducing the paper's hand-drawn
//! schemes (fig. 11 for serializing, fig. 12 for glued, fig. 15 for
//! n-level independence).
//!
//! The plan is both *analysable* — [`AssignedPlan::undone_by`] predicts
//! which aborts undo which effects — and *executable* —
//! [`AssignedPlan::execute`] runs it against a real [`Runtime`] with an
//! injected outcome per action, so tests can check the prediction
//! against observed behaviour.

use std::collections::HashMap;

use chroma_base::{Colour, ColourSet, LockMode};
use chroma_core::{ActionError, ActionId, ObjectId, Runtime};

/// A description of an application's action structure.
///
/// # Examples
///
/// Fig. 14 of the paper (C and F top-level independent, E independent of
/// B but not of A):
///
/// ```
/// use chroma_structures::compiler::Structure;
///
/// let fig14 = Structure::top(
///     "A",
///     vec![
///         Structure::work("D"),
///         Structure::action(
///             "B",
///             vec![
///                 Structure::independent("C", 2, vec![Structure::work("C.body")]),
///                 Structure::independent("E", 1, vec![Structure::work("E.body")]),
///             ],
///         ),
///         Structure::independent("F", 1, vec![Structure::work("F.body")]),
///     ],
/// );
/// # let _ = fig14;
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Structure {
    /// A unit of work: performs one write under its action's update
    /// colour. Leaves are where effects happen.
    Work {
        /// Name used to identify the effect in reports.
        name: String,
    },
    /// An action enclosing sub-structures (a conventional action; its
    /// children see it as their parent).
    Action {
        /// Name used in reports and outcome injection.
        name: String,
        /// Executed in order.
        children: Vec<Structure>,
    },
    /// An action independent of its `levels` closest enclosing actions:
    /// `levels = 1` survives its parent's abort, `levels = 2` its
    /// grandparent's, and so on (figs. 14–15).
    Independent {
        /// Name used in reports and outcome injection.
        name: String,
        /// How many enclosing actions it is independent of.
        levels: usize,
        /// Executed in order inside the independent action.
        children: Vec<Structure>,
    },
    /// A serializing action (fig. 3/11): each child is a constituent
    /// step, top-level for permanence, with every lock retained by the
    /// wrapper between steps.
    Serializing {
        /// Name of the wrapper.
        name: String,
        /// The constituent steps, in order.
        steps: Vec<Structure>,
    },
    /// A glued chain (fig. 5/9/12): each child is a top-level step;
    /// locks on handed-over objects pass from step to step.
    Glued {
        /// Name of the chain.
        name: String,
        /// The chain's steps, in order.
        steps: Vec<Structure>,
    },
}

impl Structure {
    /// Creates a work leaf.
    #[must_use]
    pub fn work(name: impl Into<String>) -> Self {
        Structure::Work { name: name.into() }
    }

    /// Creates a named enclosing action.
    #[must_use]
    pub fn action(name: impl Into<String>, children: Vec<Structure>) -> Self {
        Structure::Action {
            name: name.into(),
            children,
        }
    }

    /// Creates a top-level action (alias of [`Structure::action`] for
    /// readability at the root).
    #[must_use]
    pub fn top(name: impl Into<String>, children: Vec<Structure>) -> Self {
        Structure::action(name, children)
    }

    /// Creates an action independent of `levels` enclosing actions.
    #[must_use]
    pub fn independent(name: impl Into<String>, levels: usize, children: Vec<Structure>) -> Self {
        Structure::Independent {
            name: name.into(),
            levels,
            children,
        }
    }

    /// Creates a serializing action with the given steps.
    #[must_use]
    pub fn serializing(name: impl Into<String>, steps: Vec<Structure>) -> Self {
        Structure::Serializing {
            name: name.into(),
            steps,
        }
    }

    /// Creates a glued chain with the given steps.
    #[must_use]
    pub fn glued(name: impl Into<String>, steps: Vec<Structure>) -> Self {
        Structure::Glued {
            name: name.into(),
            steps,
        }
    }
}

/// What kind of plan node an action is (affects execution and reports).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanKind {
    /// Performs a write under its update colour.
    Work,
    /// A plain enclosing action.
    Action,
    /// A control/wrapper action that performs no writes (serializing
    /// wrapper, glued gap wrapper).
    Control,
}

/// One action in an assigned plan.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// The action's name (synthetic for generated wrappers).
    pub name: String,
    /// The node kind.
    pub kind: PlanKind,
    /// Index of the parent node in [`AssignedPlan::nodes`].
    pub parent: Option<usize>,
    /// The action's assigned colour set (symbolic: indices into the
    /// plan's own colour space).
    pub colours: ColourSet,
    /// The colour the node's writes use (work and step nodes).
    pub update: Option<Colour>,
    /// Colours this node additionally takes *fence* locks in
    /// (exclusive-read) on the objects it writes — the serializing/glued
    /// hand-over mechanism.
    pub fences: ColourSet,
    /// Child node indices, in execution order.
    pub children: Vec<usize>,
}

/// A compiled action structure: concrete colour sets per action.
#[derive(Clone, Debug, Default)]
pub struct AssignedPlan {
    /// All nodes; index 0 is the root.
    pub nodes: Vec<PlanNode>,
    colours_used: usize,
}

/// Result of executing a plan: which work effects survived.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutionReport {
    /// For each work node name: `true` if its effect is permanent after
    /// the whole plan terminated.
    pub survived: HashMap<String, bool>,
}

/// Compiles a structure into a colour-assigned plan.
///
/// Colour assignment rules (mirroring §5.3–§5.6):
///
/// * a plain action shares its parent's *ambient* colour;
/// * `Independent(levels = k)` gets a fresh colour which is *also added
///   to* the ancestor `k` levels up (fig. 15: E's blue is added to A) —
///   or to no one for fully independent actions (C's and F's green);
/// * `Serializing` introduces a fresh fence colour on a control wrapper;
///   each step gets `{fence, fresh update}` and fences its writes
///   (fig. 11);
/// * `Glued` introduces one gap wrapper per hand-over, nested
///   outermost-first; step *i* gets `{gap_i, fresh update}` and fences
///   its writes in `gap_i` (fig. 12 generalised to chains).
///
/// # Errors
///
/// [`ActionError::Failed`] if an `Independent` level reaches above the
/// root in a malformed way, or if more than 64 colours are needed.
pub fn assign(structure: &Structure) -> Result<AssignedPlan, ActionError> {
    let mut plan = AssignedPlan::default();
    let root_colour = plan.fresh_colour()?;
    build(&mut plan, structure, None, root_colour, &mut Vec::new())?;
    Ok(plan)
}

/// Recursively builds plan nodes.
///
/// `ambient` is the colour a plain child shares with its parent;
/// `action_stack` holds indices of enclosing *action* nodes (not
/// controls), innermost last, for independence anchoring.
fn build(
    plan: &mut AssignedPlan,
    structure: &Structure,
    parent: Option<usize>,
    ambient: Colour,
    action_stack: &mut Vec<usize>,
) -> Result<usize, ActionError> {
    match structure {
        Structure::Work { name } => Ok(plan.push(PlanNode {
            name: name.clone(),
            kind: PlanKind::Work,
            parent,
            colours: ColourSet::single(ambient),
            update: Some(ambient),
            fences: ColourSet::EMPTY,
            children: Vec::new(),
        })),
        Structure::Action { name, children } => {
            let index = plan.push(PlanNode {
                name: name.clone(),
                kind: PlanKind::Action,
                parent,
                colours: ColourSet::single(ambient),
                update: Some(ambient),
                fences: ColourSet::EMPTY,
                children: Vec::new(),
            });
            action_stack.push(index);
            for child in children {
                let c = build(plan, child, Some(index), ambient, action_stack)?;
                plan.nodes[index].children.push(c);
            }
            action_stack.pop();
            Ok(index)
        }
        Structure::Independent {
            name,
            levels,
            children,
        } => {
            let colour = plan.fresh_colour()?;
            // Independent of the `levels` closest enclosing actions: the
            // fresh colour is anchored on the ancestor at distance
            // `levels + 1` (fig. 15: E, independent of B only, anchors
            // blue at A). If no such ancestor exists the action is fully
            // independent (C's and F's green anchor nowhere).
            if *levels < action_stack.len() {
                let anchor = action_stack[action_stack.len() - 1 - *levels];
                plan.nodes[anchor].colours = plan.nodes[anchor].colours.with(colour);
            }
            let index = plan.push(PlanNode {
                name: name.clone(),
                kind: PlanKind::Action,
                parent,
                colours: ColourSet::single(colour),
                update: Some(colour),
                fences: ColourSet::EMPTY,
                children: Vec::new(),
            });
            action_stack.push(index);
            for child in children {
                let c = build(plan, child, Some(index), colour, action_stack)?;
                plan.nodes[index].children.push(c);
            }
            action_stack.pop();
            Ok(index)
        }
        Structure::Serializing { name, steps } => {
            let fence = plan.fresh_colour()?;
            let wrapper = plan.push(PlanNode {
                name: name.clone(),
                kind: PlanKind::Control,
                parent,
                colours: ColourSet::single(fence),
                update: None,
                fences: ColourSet::EMPTY,
                children: Vec::new(),
            });
            for step in steps {
                let update = plan.fresh_colour()?;
                let step_index = plan.push(PlanNode {
                    name: format!("{name}.step{}", plan.nodes[wrapper].children.len() + 1),
                    kind: PlanKind::Action,
                    parent: Some(wrapper),
                    colours: ColourSet::from_iter([fence, update]),
                    update: Some(update),
                    fences: ColourSet::single(fence),
                    children: Vec::new(),
                });
                action_stack.push(step_index);
                let c = build(plan, step, Some(step_index), update, action_stack)?;
                plan.nodes[step_index].children.push(c);
                action_stack.pop();
                plan.nodes[wrapper].children.push(step_index);
            }
            Ok(wrapper)
        }
        Structure::Glued { name, steps } => {
            // Gap wrappers nested outermost-first: F_{n-1} ⊃ … ⊃ F_1,
            // one per gap between consecutive steps; step 1 and 2 live
            // in F_1, step i+1 in F_i. The node returned to the caller
            // (which links it into its children) is the outermost
            // wrapper, or the single step when there is no gap.
            let gap_count = steps.len().saturating_sub(1);
            let mut wrappers = Vec::with_capacity(gap_count);
            let mut inner_parent: Option<usize> = None; // within this chain
            for g in (1..=gap_count).rev() {
                let gap = plan.fresh_colour()?;
                let wrapper = plan.push(PlanNode {
                    name: format!("{name}.gap{g}"),
                    kind: PlanKind::Control,
                    parent: inner_parent.or(parent),
                    colours: ColourSet::single(gap),
                    update: None,
                    fences: ColourSet::EMPTY,
                    children: Vec::new(),
                });
                // Link inner wrappers to their enclosing wrapper; the
                // outermost one is linked by our caller.
                if let Some(p) = inner_parent {
                    plan.nodes[p].children.push(wrapper);
                }
                inner_parent = Some(wrapper);
                wrappers.push((wrapper, gap));
            }
            // wrappers is outermost-first; the innermost hosts steps 1,2.
            let outermost = wrappers.first().map(|&(w, _)| w);
            let mut single_step = None;
            for (i, step) in steps.iter().enumerate() {
                // Host wrapper: F_1 for steps 0 and 1, F_i for step i;
                // a gapless (single-step) chain has no host wrapper.
                let host = if gap_count == 0 {
                    None
                } else {
                    let host_rank = i.max(1).min(gap_count); // 1-based F index
                    Some(wrappers[wrappers.len() - host_rank].0)
                };
                // Fence colour: the gap this step hands over through
                // (gap_{i+1} — owned by F_{i+1} — except step 0 fences
                // via its own host F_1, and the final step fences
                // nothing).
                let fence_rank = i + 1; // gap index the step fences in
                let fence = if fence_rank <= gap_count {
                    Some(wrappers[wrappers.len() - fence_rank].1)
                } else {
                    None
                };
                let update = plan.fresh_colour()?;
                let mut colours = ColourSet::single(update);
                if let Some(f) = fence {
                    colours = colours.with(f);
                }
                let step_index = plan.push(PlanNode {
                    name: format!("{name}.step{}", i + 1),
                    kind: PlanKind::Action,
                    parent: host.or(parent),
                    colours,
                    update: Some(update),
                    fences: fence.map(ColourSet::single).unwrap_or_default(),
                    children: Vec::new(),
                });
                match host {
                    Some(host) => plan.nodes[host].children.push(step_index),
                    None => single_step = Some(step_index), // caller links it
                }
                action_stack.push(step_index);
                let c = build(plan, step, Some(step_index), update, action_stack)?;
                plan.nodes[step_index].children.push(c);
                action_stack.pop();
            }
            outermost
                .or(single_step)
                .ok_or_else(|| ActionError::failed("a glued chain needs at least one step"))
        }
    }
}

impl AssignedPlan {
    fn push(&mut self, node: PlanNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn fresh_colour(&mut self) -> Result<Colour, ActionError> {
        if self.colours_used >= chroma_base::MAX_LIVE_COLOURS {
            return Err(ActionError::failed("plan needs more than 64 colours"));
        }
        let colour = Colour::from_index(self.colours_used);
        self.colours_used += 1;
        Ok(colour)
    }

    /// Returns the number of distinct colours the plan uses.
    #[must_use]
    pub fn colour_count(&self) -> usize {
        self.colours_used
    }

    /// Returns the index of the node named `name`, if any.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Predicts whether aborting `aborter` (at its normal termination
    /// point, everything else committing) undoes the effect of the work
    /// node `work`.
    ///
    /// The rule follows §5.2 inheritance: an effect written in colour
    /// `c` climbs the chain of closest-`c`-ancestors; it is undone
    /// exactly by aborts of nodes on that chain (including the work node
    /// itself and enclosing actions up to the first anchor), and becomes
    /// permanent when the chain's outermost member commits.
    ///
    /// Returns `None` if either name is unknown or `work` is not a work
    /// node.
    #[must_use]
    pub fn undone_by(&self, work: &str, aborter: &str) -> Option<bool> {
        let work_index = self.find(work)?;
        let aborter_index = self.find(aborter)?;
        let colour = self.nodes[work_index].update?;
        if self.nodes[work_index].kind != PlanKind::Work {
            return None;
        }
        // Climb: every node from `work` upward is on the vulnerable
        // chain while it possesses... precisely: the effect sits at the
        // work node; on commit it moves to the closest ancestor with
        // `colour`; and so on. Nodes holding the effect at some point:
        // work itself, then each successive closest-`colour`-ancestor.
        let mut chain = vec![work_index];
        let mut cursor = work_index;
        while let Some(anchor) = self.closest_ancestor_with(cursor, colour) {
            chain.push(anchor);
            cursor = anchor;
        }
        Some(chain.contains(&aborter_index))
    }

    fn closest_ancestor_with(&self, index: usize, colour: Colour) -> Option<usize> {
        let mut cursor = self.nodes[index].parent;
        while let Some(i) = cursor {
            if self.nodes[i].colours.contains(colour) {
                return Some(i);
            }
            cursor = self.nodes[i].parent;
        }
        None
    }

    /// Executes the plan against a real runtime.
    ///
    /// Each work node writes `1` to its own freshly created object (in
    /// the node's update colour, with the node's fence locks). Each
    /// action terminates according to `outcome(name)`: `true` = commit,
    /// `false` = abort (children still execute first — this models "the
    /// action fails at its end", the interesting case for survival).
    ///
    /// Returns which work effects are permanent afterwards; compare with
    /// [`AssignedPlan::undone_by`] to validate the compiler (that is
    /// exactly what the fig. 15 experiment does).
    ///
    /// # Errors
    ///
    /// Propagates runtime failures (colour exhaustion, lock errors —
    /// none occur for well-formed plans).
    pub fn execute(
        &self,
        rt: &Runtime,
        outcome: &dyn Fn(&str) -> bool,
    ) -> Result<ExecutionReport, ActionError> {
        if self.nodes.is_empty() {
            return Ok(ExecutionReport::default());
        }
        // Map plan colours to fresh runtime colours.
        let mut colour_map = Vec::with_capacity(self.colours_used);
        for _ in 0..self.colours_used {
            colour_map.push(rt.universe().fresh()?);
        }
        let mut objects: HashMap<usize, ObjectId> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind == PlanKind::Work {
                objects.insert(i, rt.create_object(&0u8)?);
            }
        }
        self.run_node(rt, 0, None, &colour_map, &objects, outcome)?;
        let mut survived = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind == PlanKind::Work {
                let value: u8 = rt.read_committed(objects[&i])?;
                survived.insert(node.name.clone(), value == 1);
            }
        }
        for colour in colour_map {
            rt.universe().release(colour);
        }
        Ok(ExecutionReport { survived })
    }

    fn run_node(
        &self,
        rt: &Runtime,
        index: usize,
        parent_action: Option<ActionId>,
        colour_map: &[Colour],
        objects: &HashMap<usize, ObjectId>,
        outcome: &dyn Fn(&str) -> bool,
    ) -> Result<(), ActionError> {
        let node = &self.nodes[index];
        let colours: ColourSet = node.colours.iter().map(|c| colour_map[c.index()]).collect();
        let action = match parent_action {
            Some(parent) => rt.begin_nested(parent, colours)?,
            None => rt.begin_top(colours)?,
        };
        // Perform the node's own write (work nodes only).
        if node.kind == PlanKind::Work {
            let update = colour_map[node.update.expect("work has update").index()];
            let object = objects[&index];
            let scope = rt.scope(action)?;
            for fence in node.fences.iter() {
                scope.lock(colour_map[fence.index()], object, LockMode::ExclusiveRead)?;
            }
            scope.write_in(update, object, &1u8)?;
        }
        // Children run in order; a child subtree's failure is contained
        // (independent or nested, the parent decides — here: continue).
        for &child in &node.children {
            // Steps with their own fences lock their work objects too.
            self.run_node(rt, child, Some(action), colour_map, objects, outcome)?;
        }
        if node.kind != PlanKind::Work && !node.fences.is_empty() {
            // Step nodes fence the objects written beneath them.
            let scope = rt.scope(action)?;
            for &child in &node.children {
                if let Some(&object) = objects.get(&child) {
                    for fence in node.fences.iter() {
                        scope.lock(colour_map[fence.index()], object, LockMode::ExclusiveRead)?;
                    }
                }
            }
        }
        if outcome(&node.name) {
            rt.commit(action)?;
        } else {
            rt.abort(action);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig14() -> Structure {
        Structure::top(
            "A",
            vec![
                Structure::work("D"),
                Structure::action(
                    "B",
                    vec![
                        Structure::independent("C", 2, vec![Structure::work("C.body")]),
                        Structure::independent("E", 1, vec![Structure::work("E.body")]),
                    ],
                ),
                Structure::independent("F", 1, vec![Structure::work("F.body")]),
            ],
        )
    }

    #[test]
    fn fig15_assignment_shape() {
        let plan = assign(&fig14()).unwrap();
        // A gains E's anchor colour: |colours(A)| == 2 (red + blue).
        let a = &plan.nodes[plan.find("A").unwrap()];
        assert_eq!(a.colours.len(), 2, "A should be red+blue: {a:?}");
        // B keeps only the ambient colour (red).
        let b = &plan.nodes[plan.find("B").unwrap()];
        assert_eq!(b.colours.len(), 1);
        assert!(b.colours.is_subset_of(a.colours));
        // C and F have fresh colours disjoint from A's.
        let c = &plan.nodes[plan.find("C").unwrap()];
        let f = &plan.nodes[plan.find("F").unwrap()];
        assert!(!c.colours.intersects(a.colours));
        assert!(!f.colours.intersects(a.colours));
        // E's colour is possessed by A but not by B.
        let e = &plan.nodes[plan.find("E").unwrap()];
        assert!(e.colours.is_subset_of(a.colours));
        assert!(!e.colours.intersects(b.colours));
    }

    #[test]
    fn fig14_survival_predictions() {
        let plan = assign(&fig14()).unwrap();
        // "If A aborts, any effects of D, B and E will be undone."
        assert_eq!(plan.undone_by("D", "A"), Some(true));
        assert_eq!(plan.undone_by("E.body", "A"), Some(true));
        // "...on the other hand if B aborts after invoking E, the
        // effects of E will not be undone."
        assert_eq!(plan.undone_by("E.body", "B"), Some(false));
        // C and F survive everything except themselves.
        assert_eq!(plan.undone_by("C.body", "A"), Some(false));
        assert_eq!(plan.undone_by("C.body", "B"), Some(false));
        assert_eq!(plan.undone_by("F.body", "A"), Some(false));
        assert_eq!(plan.undone_by("C.body", "C"), Some(true));
    }

    #[test]
    fn serializing_assignment_matches_fig11() {
        let s = Structure::serializing(
            "S",
            vec![Structure::work("B.body"), Structure::work("C.body")],
        );
        let plan = assign(&s).unwrap();
        let wrapper = &plan.nodes[plan.find("S").unwrap()];
        assert_eq!(wrapper.kind, PlanKind::Control);
        assert_eq!(wrapper.colours.len(), 1);
        let step1 = &plan.nodes[plan.find("S.step1").unwrap()];
        let step2 = &plan.nodes[plan.find("S.step2").unwrap()];
        // Each step: fence colour + private update colour.
        assert_eq!(step1.colours.len(), 2);
        assert!(wrapper.colours.is_subset_of(step1.colours));
        assert!(wrapper.colours.is_subset_of(step2.colours));
        // Update colours are private.
        assert!(!step1
            .colours
            .minus(wrapper.colours)
            .intersects(step2.colours));
        // Steps are undone only by themselves (top-level for permanence).
        assert_eq!(plan.undone_by("B.body", "S"), Some(false));
        assert_eq!(plan.undone_by("B.body", "S.step2"), Some(false));
        assert_eq!(plan.undone_by("B.body", "S.step1"), Some(true));
    }

    #[test]
    fn glued_assignment_nests_gap_wrappers() {
        let g = Structure::glued(
            "G",
            vec![
                Structure::work("I1.body"),
                Structure::work("I2.body"),
                Structure::work("I3.body"),
            ],
        );
        let plan = assign(&g).unwrap();
        // Two gaps: wrappers G.gap2 ⊃ G.gap1.
        let gap2 = plan.find("G.gap2").unwrap();
        let gap1 = plan.find("G.gap1").unwrap();
        assert_eq!(plan.nodes[gap1].parent, Some(gap2));
        // Steps 1 and 2 live in gap1, step 3 in gap2.
        let s1 = plan.find("G.step1").unwrap();
        let s2 = plan.find("G.step2").unwrap();
        let s3 = plan.find("G.step3").unwrap();
        assert_eq!(plan.nodes[s1].parent, Some(gap1));
        assert_eq!(plan.nodes[s2].parent, Some(gap1));
        assert_eq!(plan.nodes[s3].parent, Some(gap2));
        // Step 2 fences via gap2's colour.
        assert!(plan.nodes[s2].fences.is_subset_of(plan.nodes[gap2].colours));
        // The final step fences nothing.
        assert!(plan.nodes[s3].fences.is_empty());
        // Steps are independent of the wrappers.
        assert_eq!(plan.undone_by("I1.body", "G.gap1"), Some(false));
        assert_eq!(plan.undone_by("I2.body", "G.gap2"), Some(false));
    }

    #[test]
    fn execution_matches_prediction_for_fig14() {
        let structure = fig14();
        let plan = assign(&structure).unwrap();
        let work_nodes = ["D", "C.body", "E.body", "F.body"];
        let aborters = ["A", "B", "C", "E", "F"];
        for aborter in aborters {
            let rt = Runtime::builder().build();
            let report = plan.execute(&rt, &|name| name != aborter).unwrap();
            for work in work_nodes {
                // A work node under an aborted action never commits its
                // own effect in this model only if its *enclosing*
                // aborts before... our model: work always commits, the
                // aborter aborts at its end. Prediction applies.
                let predicted_undone = plan.undone_by(work, aborter).unwrap();
                let survived = report.survived[work];
                assert_eq!(
                    survived, !predicted_undone,
                    "aborter={aborter} work={work}: survived={survived}, predicted undone={predicted_undone}"
                );
            }
        }
    }

    #[test]
    fn execution_all_commit_everything_survives() {
        let plan = assign(&fig14()).unwrap();
        let rt = Runtime::builder().build();
        let report = plan.execute(&rt, &|_| true).unwrap();
        assert!(report.survived.values().all(|&s| s));
        assert_eq!(report.survived.len(), 4);
    }

    #[test]
    fn single_colour_plan_for_plain_nesting() {
        let s = Structure::top(
            "T",
            vec![Structure::action("N", vec![Structure::work("w")])],
        );
        let plan = assign(&s).unwrap();
        assert_eq!(plan.colour_count(), 1);
        assert_eq!(plan.undone_by("w", "T"), Some(true));
        assert_eq!(plan.undone_by("w", "N"), Some(true));
    }

    #[test]
    fn unknown_names_return_none() {
        let plan = assign(&fig14()).unwrap();
        assert_eq!(plan.undone_by("nope", "A"), None);
        assert_eq!(plan.undone_by("D", "nope"), None);
        // Non-work first argument.
        assert_eq!(plan.undone_by("B", "A"), None);
    }
}
