//! Compensating chains: the §3.4 follow-up the paper leaves open.
//!
//! "Note that once a top-level action commits, its effects can only be
//! 'undone' by running one or more application specific compensating
//! actions [8]. Developing mechanisms for compensation within the
//! framework proposed here is left as a topic for further research."
//!
//! A [`CompensatingChain`] is that mechanism in its simplest useful
//! form (what later literature calls a saga, and what the paper's
//! split-transaction reference [13] gestures at): a sequence of
//! top-level steps, each paired with an application-specific
//! compensating action. Steps commit immediately — their effects are
//! visible and permanent, maximising concurrency, exactly like a chain
//! of independent actions. If the whole activity later has to be
//! abandoned, [`unwind`](CompensatingChain::unwind) runs the registered
//! compensations in reverse order, each itself a top-level action.
//!
//! This is weaker than failure atomicity (intermediate states were
//! visible) but is the only option once permanence has been granted —
//! which is the trade the paper's bulletin-board discussion makes
//! explicitly.

use chroma_base::ColourSet;
use chroma_core::{ActionError, ActionScope, Runtime};
use parking_lot::Mutex;

type CompensationFn = Box<dyn FnOnce(&mut ActionScope<'_>) -> Result<(), ActionError> + Send>;

/// What [`CompensatingChain::unwind`] did.
#[derive(Debug, Default)]
pub struct UnwindReport {
    /// Labels of steps successfully compensated, in unwind (reverse)
    /// order.
    pub compensated: Vec<String>,
    /// Compensations that themselves failed, with their errors. These
    /// require operator attention — compensation failures cannot be
    /// rolled back further.
    pub failed: Vec<(String, ActionError)>,
}

impl UnwindReport {
    /// `true` if every registered compensation committed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }
}

/// A chain of immediately-committed steps with registered
/// compensations.
///
/// # Examples
///
/// A two-step booking where the second step fails and the first is
/// compensated:
///
/// ```
/// use chroma_core::{ActionError, Runtime};
/// use chroma_structures::CompensatingChain;
///
/// # fn main() -> Result<(), ActionError> {
/// let rt = Runtime::builder().build();
/// let seats = rt.create_object(&10i64)?;
/// let hotel = rt.create_object(&5i64)?;
///
/// let chain = CompensatingChain::begin(&rt);
/// chain.step(
///     "reserve-seat",
///     |a| a.modify(seats, |n: &mut i64| *n -= 1),
///     move |a| a.modify(seats, |n: &mut i64| *n += 1),
/// )?;
/// let hotel_result: Result<(), ActionError> = chain.step(
///     "reserve-room",
///     |a| {
///         a.modify(hotel, |n: &mut i64| *n -= 1)?;
///         Err(ActionError::failed("no rooms after all"))
///     },
///     move |a| a.modify(hotel, |n: &mut i64| *n += 1),
/// );
/// assert!(hotel_result.is_err());
///
/// let report = chain.unwind()?;
/// assert!(report.is_clean());
/// assert_eq!(rt.read_committed::<i64>(seats)?, 10); // compensated
/// assert_eq!(rt.read_committed::<i64>(hotel)?, 5); // step aborted itself
/// # Ok(())
/// # }
/// ```
pub struct CompensatingChain {
    rt: Runtime,
    registered: Mutex<Vec<(String, CompensationFn)>>,
}

impl CompensatingChain {
    /// Begins an empty chain.
    #[must_use]
    pub fn begin(rt: &Runtime) -> Self {
        CompensatingChain {
            rt: rt.clone(),
            registered: Mutex::new(Vec::new()),
        }
    }

    /// Returns how many compensations are currently registered.
    #[must_use]
    pub fn registered_count(&self) -> usize {
        self.registered.lock().len()
    }

    /// Runs `body` as a top-level action (fresh colour — independent of
    /// everything); on commit, registers `compensation` to undo it if
    /// the chain unwinds.
    ///
    /// On failure the step is aborted as usual and **no** compensation
    /// is registered — the step never happened.
    ///
    /// # Errors
    ///
    /// The body's error, after the step aborted.
    pub fn step<R>(
        &self,
        label: &str,
        body: impl FnOnce(&mut ActionScope<'_>) -> Result<R, ActionError>,
        compensation: impl FnOnce(&mut ActionScope<'_>) -> Result<(), ActionError> + Send + 'static,
    ) -> Result<R, ActionError> {
        let colour = self.rt.universe().fresh()?;
        let result = self.rt.run_top(ColourSet::single(colour), colour, body);
        self.rt.universe().release(colour);
        let value = result?;
        self.registered
            .lock()
            .push((label.to_owned(), Box::new(compensation)));
        Ok(value)
    }

    /// Completes the chain successfully: all compensations are
    /// discarded; the steps' effects stand.
    pub fn complete(self) {
        self.registered.lock().clear();
    }

    /// Unwinds the chain: every registered compensation runs as its own
    /// top-level action, in reverse registration order. Compensations
    /// that fail are reported (they cannot be retried through this
    /// chain; the report carries their errors).
    ///
    /// # Errors
    ///
    /// Colour allocation failures only; individual compensation
    /// failures are *reported*, not propagated, so later compensations
    /// still run.
    pub fn unwind(self) -> Result<UnwindReport, ActionError> {
        let mut report = UnwindReport::default();
        let mut registered = std::mem::take(&mut *self.registered.lock());
        while let Some((label, compensation)) = registered.pop() {
            let colour = self.rt.universe().fresh()?;
            let outcome = self
                .rt
                .run_top(ColourSet::single(colour), colour, compensation);
            self.rt.universe().release(colour);
            match outcome {
                Ok(()) => report.compensated.push(label),
                Err(error) => report.failed.push((label, error)),
            }
        }
        Ok(report)
    }
}

impl std::fmt::Debug for CompensatingChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompensatingChain")
            .field("registered", &self.registered_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_keeps_all_effects() {
        let rt = Runtime::builder().build();
        let a = rt.create_object(&0i64).unwrap();
        let b = rt.create_object(&0i64).unwrap();
        let chain = CompensatingChain::begin(&rt);
        chain
            .step("a", |s| s.write(a, &1i64), move |s| s.write(a, &0i64))
            .unwrap();
        chain
            .step("b", |s| s.write(b, &1i64), move |s| s.write(b, &0i64))
            .unwrap();
        assert_eq!(chain.registered_count(), 2);
        chain.complete();
        assert_eq!(rt.read_committed::<i64>(a).unwrap(), 1);
        assert_eq!(rt.read_committed::<i64>(b).unwrap(), 1);
    }

    #[test]
    fn unwind_runs_in_reverse_order() {
        let rt = Runtime::builder().build();
        let log = rt.create_object(&Vec::<String>::new()).unwrap();
        let chain = CompensatingChain::begin(&rt);
        for name in ["first", "second", "third"] {
            let label = name.to_owned();
            chain
                .step(
                    name,
                    |_| Ok(()),
                    move |s| s.modify(log, |l: &mut Vec<String>| l.push(label)),
                )
                .unwrap();
        }
        let report = chain.unwind().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.compensated, vec!["third", "second", "first"]);
        let order: Vec<String> = rt.read_committed(log).unwrap();
        assert_eq!(order, vec!["third", "second", "first"]);
    }

    #[test]
    fn failed_step_registers_no_compensation() {
        let rt = Runtime::builder().build();
        let o = rt.create_object(&0i64).unwrap();
        let chain = CompensatingChain::begin(&rt);
        let result = chain.step(
            "fails",
            |s| {
                s.write(o, &9i64)?;
                Err::<(), _>(ActionError::failed("boom"))
            },
            move |s| s.write(o, &-1i64),
        );
        assert!(result.is_err());
        assert_eq!(chain.registered_count(), 0);
        let report = chain.unwind().unwrap();
        assert!(report.compensated.is_empty());
        assert_eq!(rt.read_committed::<i64>(o).unwrap(), 0);
    }

    #[test]
    fn failed_compensation_is_reported_but_others_run() {
        let rt = Runtime::builder().build();
        let good = rt.create_object(&1i64).unwrap();
        let chain = CompensatingChain::begin(&rt);
        chain
            .step("good", |_| Ok(()), move |s| s.write(good, &0i64))
            .unwrap();
        chain
            .step(
                "bad",
                |_| Ok(()),
                |_| Err(ActionError::failed("compensation broken")),
            )
            .unwrap();
        let report = chain.unwind().unwrap();
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].0, "bad");
        assert_eq!(report.compensated, vec!["good"]);
        assert!(!report.is_clean());
        assert_eq!(rt.read_committed::<i64>(good).unwrap(), 0);
    }

    #[test]
    fn steps_are_visible_immediately() {
        let rt = Runtime::builder().build();
        let o = rt.create_object(&0i64).unwrap();
        let chain = CompensatingChain::begin(&rt);
        chain
            .step("publish", |s| s.write(o, &7i64), move |s| s.write(o, &0i64))
            .unwrap();
        // Visible to everyone before the chain resolves — the defining
        // difference from a serializing action.
        assert_eq!(rt.atomic(|a| a.read::<i64>(o)).unwrap(), 7);
        chain.complete();
    }
}
