//! The distributed permanence backend: the paper's planned
//! "distributed version".
//!
//! A [`PartitionedStore`] spreads object states over a set of simulated
//! fail-silent nodes, `replication` copies each. It implements
//! [`PermanenceBackend`], so a [`chroma_core::Runtime`] built with
//! `Runtime::builder().backend(..)` gets
//! *distributed* permanence of effect: every outermost-coloured commit
//! becomes a presumed-abort two-phase commit across the object stores
//! holding the written objects' replicas, atomic despite message loss,
//! duplication and node crashes.
//!
//! Reads are served by the freshest reachable, non-stale replica
//! (version-stamped states); recovering nodes pull current states from
//! their peers before serving again. With every replica of some written
//! object down, a commit reports
//! [`BackendError::Unavailable`] and the runtime keeps the action
//! active so the commit can be retried after recovery — permanence is
//! never silently dropped.

use std::collections::HashMap;

use chroma_base::{NodeId, ObjectId};
use chroma_core::{BackendError, PermanenceBackend};
use chroma_obs::{EventKind, Observable};
use chroma_store::{codec, StoreBytes};
use parking_lot::Mutex;

use crate::msg::Write;
use crate::node::RETRY_INTERVAL;
use crate::sim::{NetConfig, Sim};

/// How many coordinators a commit tries before reporting
/// unavailability.
const COMMIT_ATTEMPTS: usize = 3;

#[derive(Debug)]
struct PartitionedInner {
    sim: Sim,
    nodes: Vec<NodeId>,
    replication: usize,
    next_version: u64,
}

/// Object states partitioned and replicated over simulated nodes, with
/// two-phase-commit installation.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use chroma_core::{Runtime, RuntimeConfig};
/// use chroma_dist::PartitionedStore;
///
/// # fn main() -> Result<(), chroma_core::ActionError> {
/// let store = Arc::new(PartitionedStore::new(42, 3, 2));
/// let rt = Runtime::builder()
///     .config(RuntimeConfig::default())
///     .backend(store.clone())
///     .build();
///
/// let account = rt.create_object(&100i64)?;
/// rt.atomic(|a| a.modify(account, |b: &mut i64| *b -= 30))?;
///
/// // One storage node crashes; committed state stays readable.
/// store.crash_node(0);
/// assert_eq!(rt.read_committed::<i64>(account)?, 70);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PartitionedStore {
    inner: Mutex<PartitionedInner>,
}

impl PartitionedStore {
    /// Creates a store of `node_count` simulated nodes with
    /// `replication` copies of every object (clamped to `node_count`),
    /// on a reliable network.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    #[must_use]
    pub fn new(seed: u64, node_count: usize, replication: usize) -> Self {
        Self::with_net(seed, node_count, replication, NetConfig::default())
    }

    /// Creates a store whose internal network loses/duplicates/delays
    /// messages per `net` — the commit protocol masks these failures.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    #[must_use]
    pub fn with_net(seed: u64, node_count: usize, replication: usize, net: NetConfig) -> Self {
        assert!(node_count > 0, "a partitioned store needs nodes");
        let mut sim = Sim::new(seed);
        sim.net = net;
        let nodes: Vec<NodeId> = (0..node_count).map(|_| sim.add_node()).collect();
        PartitionedStore {
            inner: Mutex::new(PartitionedInner {
                sim,
                nodes,
                replication: replication.clamp(1, node_count),
                next_version: 1,
            }),
        }
    }

    /// Returns the number of storage nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Returns how many storage nodes are currently up.
    #[must_use]
    pub fn up_count(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .nodes
            .iter()
            .filter(|&&n| inner.sim.node(n).up)
            .count()
    }

    /// Crashes storage node `index` (volatile state lost; its replica
    /// copies go stale until it recovers and catches up).
    pub fn crash_node(&self, index: usize) {
        let mut inner = self.inner.lock();
        let node = inner.nodes[index];
        inner.sim.schedule_crash(node, 0);
        inner.sim.run_to_quiescence();
    }

    /// Recovers storage node `index`: replays its stable store, resumes
    /// in-doubt transactions, pulls fresh replica states from peers.
    pub fn recover_node(&self, index: usize) {
        let mut inner = self.inner.lock();
        let node = inner.nodes[index];
        inner.sim.schedule_recover(node, RETRY_INTERVAL);
        inner.sim.run_to_quiescence();
    }

    /// The replica homes of `object`: `replication` consecutive nodes
    /// starting at a hash of the id.
    fn replicas_of(inner: &PartitionedInner, object: ObjectId) -> Vec<NodeId> {
        let n = inner.nodes.len();
        let start = (object.as_raw() as usize) % n;
        (0..inner.replication)
            .map(|k| inner.nodes[(start + k) % n])
            .collect()
    }
}

impl PermanenceBackend for PartitionedStore {
    fn commit_batch(&self, updates: Vec<(ObjectId, StoreBytes)>) -> Result<(), BackendError> {
        if updates.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        let version = inner.next_version;
        inner.next_version += 1;

        // Every attempt re-plans against the *current* up-set: a crash
        // processed during a previous attempt changes both the viable
        // write targets and the viable coordinators, and a stale plan
        // (writes aimed at dead participants, a dead coordinator) can
        // only abort again. Each attempt therefore burns on real 2PC
        // work, never on a coordinator already known to be down.
        for attempt in 0..COMMIT_ATTEMPTS {
            // Plan the per-node writes: each object goes to its *up*
            // replicas, version-stamped; down replicas catch up on
            // recovery via the pull protocol (peer registration happens
            // here).
            let mut per_node: HashMap<NodeId, Vec<Write>> = HashMap::new();
            for (object, state) in &updates {
                let replicas = Self::replicas_of(&inner, *object);
                for &replica in &replicas {
                    let peers: Vec<NodeId> =
                        replicas.iter().copied().filter(|&r| r != replica).collect();
                    inner
                        .sim
                        .node_mut(replica)
                        .replica_peers
                        .insert(*object, peers);
                }
                let up: Vec<NodeId> = replicas
                    .iter()
                    .copied()
                    .filter(|&r| inner.sim.node(r).up)
                    .collect();
                if up.is_empty() {
                    return Err(BackendError::Unavailable(format!(
                        "every replica of {object} is down"
                    )));
                }
                inner.sim.obs().emit(EventKind::ReplicaWrite {
                    object: *object,
                    version,
                    fanout: up.len() as u64,
                });
                let payload =
                    codec::to_bytes(&(version, state.to_vec())).expect("versioned state encodes");
                for node in up {
                    per_node.entry(node).or_default().push(Write {
                        object: *object,
                        state: StoreBytes::from(payload.clone()),
                    });
                }
            }

            // The coordinator comes from the planned (hence up) nodes,
            // rotated by attempt so an aborting coordinator is not
            // immediately re-elected.
            let mut candidates: Vec<NodeId> = per_node.keys().copied().collect();
            candidates.sort();
            let coordinator = candidates[attempt % candidates.len()];
            let writes: Vec<(NodeId, Vec<Write>)> =
                per_node.iter().map(|(&n, w)| (n, w.clone())).collect();
            let txn = inner.sim.begin_transaction(coordinator, writes);
            inner.sim.run_to_quiescence();
            if inner.sim.coordinator_outcome(coordinator, txn) == Some(true) {
                return Ok(());
            }
        }
        Err(BackendError::Unavailable(format!(
            "two-phase commit failed after {COMMIT_ATTEMPTS} attempts"
        )))
    }

    fn read(&self, object: ObjectId) -> Option<StoreBytes> {
        let inner = self.inner.lock();
        let (replica, version, state) = Self::replicas_of(&inner, object)
            .into_iter()
            .filter(|&replica| {
                let node = inner.sim.node(replica);
                node.up && !node.stale.contains(&object)
            })
            .filter_map(|replica| {
                inner
                    .sim
                    .node(replica)
                    .read_versioned(object)
                    .map(|(v, s)| (replica, v, s))
            })
            .max_by_key(|&(_, version, _)| version)?;
        inner.sim.obs().emit(EventKind::ReplicaRead {
            node: replica,
            object,
            version,
            stale: inner.sim.node(replica).stale.contains(&object),
        });
        Some(state)
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.read(object).is_some()
    }

    fn recover(&self) {
        let mut inner = self.inner.lock();
        let down: Vec<NodeId> = inner
            .nodes
            .iter()
            .copied()
            .filter(|&n| !inner.sim.node(n).up)
            .collect();
        for node in down {
            inner.sim.schedule_recover(node, RETRY_INTERVAL);
        }
        inner.sim.run_to_quiescence();
    }
}

impl Observable for PartitionedStore {
    fn install_obs(&self, obs: chroma_obs::Obs) {
        // Thread the caller's handle into the internal simulation so
        // the backend's 2PC, replica-install and catch-up events land
        // in the same trace as the runtime's. Note this switches the
        // bus clock to simulated time.
        self.inner.lock().sim.install_obs(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(v: u8) -> StoreBytes {
        StoreBytes::from(vec![v])
    }

    #[test]
    fn commit_and_read_round_trip() {
        let store = PartitionedStore::new(1, 3, 2);
        let o = ObjectId::from_raw(7);
        store.commit_batch(vec![(o, bytes(1))]).unwrap();
        assert_eq!(store.read(o).as_deref(), Some(&[1u8][..]));
        store.commit_batch(vec![(o, bytes(2))]).unwrap();
        assert_eq!(store.read(o).as_deref(), Some(&[2u8][..]));
    }

    #[test]
    fn survives_minority_crash() {
        let store = PartitionedStore::new(2, 3, 3);
        let o = ObjectId::from_raw(1);
        store.commit_batch(vec![(o, bytes(9))]).unwrap();
        store.crash_node(0);
        assert_eq!(store.read(o).as_deref(), Some(&[9u8][..]));
        // Writes continue against the available copies.
        store.commit_batch(vec![(o, bytes(10))]).unwrap();
        assert_eq!(store.read(o).as_deref(), Some(&[10u8][..]));
        // The crashed node recovers and catches up.
        store.recover_node(0);
        assert_eq!(store.read(o).as_deref(), Some(&[10u8][..]));
        assert_eq!(store.up_count(), 3);
    }

    #[test]
    fn unavailable_when_all_replicas_down() {
        let store = PartitionedStore::new(3, 2, 2);
        let o = ObjectId::from_raw(1);
        store.commit_batch(vec![(o, bytes(1))]).unwrap();
        store.crash_node(0);
        store.crash_node(1);
        assert!(store.read(o).is_none());
        let err = store.commit_batch(vec![(o, bytes(2))]).unwrap_err();
        assert!(matches!(err, BackendError::Unavailable(_)));
        // Recovery restores service and the committed state.
        store.recover();
        assert_eq!(store.read(o).as_deref(), Some(&[1u8][..]));
        store.commit_batch(vec![(o, bytes(2))]).unwrap();
        assert_eq!(store.read(o).as_deref(), Some(&[2u8][..]));
    }

    #[test]
    fn retry_survives_lowest_id_coordinators_crashing() {
        use crate::msg::TxnId;
        // Replication 3 on 3 nodes: object 0's replicas are all nodes,
        // sorted candidate order n0, n1, n2.
        let store = PartitionedStore::new(6, 3, 3);
        let o = ObjectId::from_raw(0);
        {
            let mut inner = store.inner.lock();
            let (n0, n1, n2) = (inner.nodes[0], inner.nodes[1], inner.nodes[2]);
            // n0 and n1 die at t=0, *during* the first attempt (the
            // crashes are queued, not yet processed, so the first plan
            // still sees them up and elects n0 coordinator). n2 vetoes
            // the first transaction so it votes no without logging
            // `Prepared` against the dead coordinator.
            inner.sim.schedule_crash(n0, 0);
            inner.sim.schedule_crash(n1, 0);
            inner.sim.node_mut(n2).veto.insert(TxnId(1));
        }
        // The first attempt aborts. The retry must re-plan from the
        // survivors and elect an up coordinator instead of burning the
        // remaining attempts on the crashed low-id candidates.
        store.commit_batch(vec![(o, bytes(9))]).unwrap();
        assert_eq!(store.read(o).as_deref(), Some(&[9u8][..]));
        assert_eq!(store.up_count(), 1);
    }

    #[test]
    fn commits_mask_message_loss() {
        let store = PartitionedStore::with_net(
            4,
            3,
            2,
            NetConfig {
                loss: 0.25,
                duplication: 0.25,
                ..NetConfig::default()
            },
        );
        for i in 0..10u64 {
            let o = ObjectId::from_raw(i);
            store.commit_batch(vec![(o, bytes(i as u8))]).unwrap();
            assert_eq!(store.read(o).as_deref(), Some(&[i as u8][..]));
        }
    }

    #[test]
    fn batch_is_atomic_across_partitions() {
        let store = PartitionedStore::new(5, 4, 2);
        let objects: Vec<ObjectId> = (0..8).map(ObjectId::from_raw).collect();
        let updates: Vec<(ObjectId, StoreBytes)> = objects.iter().map(|&o| (o, bytes(3))).collect();
        store.commit_batch(updates).unwrap();
        for &o in &objects {
            assert_eq!(store.read(o).as_deref(), Some(&[3u8][..]));
        }
    }
}
