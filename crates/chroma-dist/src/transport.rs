//! The transport abstraction: what a [`Node`] needs from the world.
//!
//! The paper's §2 masking layer sits between the protocol state
//! machines (2PC, RPC, replication) and an unreliable network. This
//! module factors that boundary into a trait with two implementations:
//!
//! * [`SimTransport`](crate::SimTransport) — the deterministic
//!   discrete-event simulator's per-node view, where "the network" is a
//!   seeded RNG and a priority queue;
//! * [`TcpTransport`](crate::TcpTransport) — real sockets between real
//!   processes, with sequence numbers, duplicate suppression and
//!   exponential-backoff reconnect doing the masking.
//!
//! A `Transport` is **one endpoint's** view: it knows its own identity,
//! can send to peers, schedule timers, and yields inbound events. The
//! protocol state machines never see which implementation they run on —
//! [`dispatch`] is the one place a transport event meets a node.

use std::time::Duration;

use chroma_base::NodeId;
use chroma_obs::{EventKind, Obs};

use crate::msg::{CorrId, Effect, Message, TimerTag, TxnId, Write};
use crate::node::Node;

/// An inbound occurrence at one endpoint.
#[derive(Clone, Debug)]
pub enum TransportEvent {
    /// A message arrived (and passed the masking layer's dedup).
    Deliver {
        /// The sending node.
        from: NodeId,
        /// The decoded payload.
        msg: Message,
        /// Correlation id pairing this delivery with its send event.
        corr: CorrId,
        /// The sender's Lamport clock at send time (0 if untraced);
        /// merged into the receiver's clock before the delivery event
        /// is emitted, so `deliver.lc > send.lc` (audit rule R8).
        send_lc: u64,
    },
    /// A timer this endpoint set has fired.
    Timer {
        /// The tag the node asked to be woken with.
        tag: TimerTag,
    },
    /// The masking layer observed a hole in a peer's sequence stream:
    /// frames `expected..got` are missing and will never arrive (e.g.
    /// the sender's resend buffer overflowed). Surfaced to the driver —
    /// never silently skipped — so an operator can tell "the network
    /// masked a failure" from "messages were lost for good".
    Gap {
        /// The peer whose stream has the hole.
        from: NodeId,
        /// The next sequence number the window expected.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
}

/// One endpoint's connection to the rest of the cluster.
///
/// Contract:
///
/// * [`send`](Transport::send) is fire-and-forget: the transport owns
///   retransmission and the receiver owns deduplication (the masking
///   layer); the caller must still tolerate *loss* — a peer that is
///   down forever never receives anything.
/// * [`send`](Transport::send) emits a `MsgSend` trace event (with a
///   fresh correlation id) *before* the message can reach the wire, so
///   a crash between the two never produces an orphan receive.
/// * [`poll`](Transport::poll) yields inbound events for event-driven
///   hosts. The simulator dispatches eagerly from its scheduler instead
///   and always returns `None` here.
/// * [`connect`](Transport::connect) / [`disconnect`](Transport::disconnect)
///   administratively restore / sever the link to a peer (the
///   simulator's partitions; the TCP layer's forced re-dial).
pub trait Transport {
    /// This endpoint's node identity.
    fn local(&self) -> NodeId;

    /// The observability handle events flow through.
    fn obs(&self) -> Obs;

    /// The transport's clock in microseconds (simulated or wall).
    fn now_us(&self) -> u64;

    /// Queues `msg` for delivery to `to`.
    fn send(&mut self, to: NodeId, msg: Message);

    /// Schedules a [`TransportEvent::Timer`] with `tag` after
    /// `delay_us` microseconds.
    fn set_timer(&mut self, delay_us: u64, tag: TimerTag);

    /// Administratively restores the link to `peer`.
    fn connect(&mut self, peer: NodeId);

    /// Administratively severs the link to `peer`.
    fn disconnect(&mut self, peer: NodeId);

    /// Returns the next inbound event, waiting at most `timeout`
    /// (`None` = wait forever). Push-driven transports return `None`.
    fn poll(&mut self, timeout: Option<Duration>) -> Option<TransportEvent>;

    /// Applies a node's effects: sends enter the network, timers are
    /// scheduled. The default implementation preserves effect order.
    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.send(to, msg),
                Effect::SetTimer { delay, tag } => self.set_timer(delay, tag),
            }
        }
    }
}

/// Feeds one transport event to a node: merges the Lamport clock,
/// emits the `MsgDeliver` trace event, runs the handler and applies the
/// resulting effects. The single code path shared by the simulator's
/// scheduler and the `chroma-node` process loop.
pub fn dispatch<T: Transport + ?Sized>(node: &mut Node, transport: &mut T, event: TransportEvent) {
    dispatch_with(node, transport, event, |_| {});
}

/// [`dispatch`] with a durability barrier: `barrier` runs after the
/// node's handler mutated its stable state but **before** any resulting
/// effect reaches the transport.
///
/// This is how a real process keeps the 2PC commit point honest under
/// `kill -9`: the coordinator's `CoordCommit` record (and a
/// participant's `Prepared` record) must be on disk before the first
/// `Decision` (resp. `VoteYes`) message can leave. A crash between the
/// barrier and the sends only loses volatile messages, which the
/// protocol already retransmits.
pub fn dispatch_with<T, F>(
    node: &mut Node,
    transport: &mut T,
    event: TransportEvent,
    mut barrier: F,
) where
    T: Transport + ?Sized,
    F: FnMut(&mut Node),
{
    match event {
        TransportEvent::Deliver {
            from,
            msg,
            corr,
            send_lc,
        } => {
            let to = node.id();
            let kind = msg.kind();
            let obs = transport.obs();
            // merge before emitting: the delivery's clock must
            // strictly exceed the send's (audit rule R8)
            obs.merge_clock(to, send_lc);
            obs.emit_corr(corr, EventKind::MsgDeliver { from, to, kind });
            let effects = node.handle_message(from, msg);
            barrier(node);
            transport.apply_effects(effects);
        }
        TransportEvent::Timer { tag } => {
            let effects = node.handle_timer(tag);
            barrier(node);
            transport.apply_effects(effects);
        }
        // A gap carries no payload to hand the node; the driver decides
        // how loudly to surface it (the transport already counted it).
        TransportEvent::Gap { .. } => {}
    }
}

/// A host holding a whole cluster of nodes — what the replication layer
/// is written against instead of `Sim` internals.
///
/// [`Sim`](crate::Sim) is the canonical implementation; a test harness
/// over real processes can implement it with proxies.
pub trait Cluster {
    /// Returns a reference to a member node.
    fn node(&self, id: NodeId) -> &Node;

    /// Returns a mutable reference to a member node.
    fn node_mut(&mut self, id: NodeId) -> &mut Node;

    /// The cluster-wide observability handle.
    fn obs(&self) -> Obs;

    /// Starts a distributed transaction coordinated by `coordinator`;
    /// `writes` lists `(participant, writes)` pairs.
    fn begin_transaction(
        &mut self,
        coordinator: NodeId,
        writes: Vec<(NodeId, Vec<Write>)>,
    ) -> TxnId;
}
