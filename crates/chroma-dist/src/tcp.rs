//! A real-socket [`Transport`]: the paper's masking layer over TCP.
//!
//! Frames are length-prefixed (`u32` little-endian length, then body)
//! and carry the shared [`wire`] message encoding, so TCP traffic and
//! sim traffic exercise one codec. Per peer, the masking layer adds:
//!
//! * a **sequence number** per data frame with a receiver-side
//!   [`DedupWindow`] — retransmissions and network duplicates are
//!   suppressed, and holes surface as [`TransportEvent::Gap`];
//! * a **resend buffer** ([`SendWindow`]) with cumulative acks — a
//!   reconnect retransmits everything unacknowledged;
//! * **exponential-backoff reconnect** ([`Backoff`]) — a dead peer
//!   costs one cheap dial attempt per backoff period, not a spin.
//!
//! Connections are unidirectional: each endpoint dials its own outbound
//! connection per peer (on demand) and accepts inbound ones. Acks for
//! data received from a peer travel on our outbound connection *to*
//! that peer. Every connection opens with a `Hello` frame naming the
//! sender and its **incarnation** (fresh per process start): a restarted
//! sender gets a fresh dedup window on the receiver, so its restarted
//! sequence numbers are not mistaken for duplicates.
//!
//! [`Transport::disconnect`] administratively blocks our outbound link
//! to a peer until [`Transport::connect`] — the TCP analogue of the
//! simulator's partitions, and the hook deterministic masking tests use
//! to force retransmission and gaps.

use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read, Write as IoWrite};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use chroma_base::NodeId;
use chroma_obs::{EventKind, Obs, ObsCell, Observable};
use parking_lot::Mutex;

use crate::masking::{Accept, Backoff, DedupWindow, SendWindow};
use crate::msg::{Message, TimerTag};
use crate::transport::{Transport, TransportEvent};
use crate::wire;

/// Magic opening every `Hello` frame: **ch**roma **t**rans**p**ort.
const HELLO_MAGIC: [u8; 4] = *b"CHTP";
/// Framing version; receivers reject anything else.
const HELLO_VERSION: u8 = 1;

const TAG_HELLO: u8 = 0;
const TAG_DATA: u8 = 1;
const TAG_ACK: u8 = 2;

/// Upper bound on a single frame body; larger lengths are treated as
/// stream corruption and kill the connection.
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Knobs for [`TcpTransport`].
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// First reconnect delay after a failed dial or dead connection.
    pub reconnect_min: Duration,
    /// Reconnect delay cap (delays double up to this).
    pub reconnect_max: Duration,
    /// Per-peer resend buffer capacity (frames). Overflow drops the
    /// oldest unacknowledged frame, which the receiver reports as a
    /// gap.
    pub resend_capacity: usize,
    /// Dial timeout; also used as the per-write timeout (a peer that
    /// stalls longer than this is treated as disconnected).
    pub connect_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            reconnect_min: Duration::from_millis(10),
            reconnect_max: Duration::from_secs(1),
            resend_capacity: 1024,
            connect_timeout: Duration::from_millis(200),
        }
    }
}

/// Counters describing what the masking layer did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaskingStats {
    /// Data frames delivered for the first time.
    pub fresh: u64,
    /// Data frames suppressed as duplicates.
    pub duplicates: u64,
    /// Sequence holes surfaced as [`TransportEvent::Gap`].
    pub gaps: u64,
    /// Successful outbound (re)connections, Hello included.
    pub reconnects: u64,
    /// Data frames retransmitted on a new connection.
    pub resent: u64,
    /// Socket write failures (each costs a reconnect).
    pub send_errors: u64,
    /// Inbound payloads the wire codec rejected (dropped, counted).
    pub decode_errors: u64,
}

/// What a reader thread learned from one inbound frame.
struct InEvent {
    peer: NodeId,
    incarnation: u64,
    frame: InFrame,
}

enum InFrame {
    Data {
        seq: u64,
        corr: u64,
        send_lc: u64,
        payload: Vec<u8>,
    },
    Ack {
        upto: u64,
    },
}

/// Outbound state for one peer.
#[derive(Debug)]
struct Outbound {
    window: SendWindow,
    backoff: Backoff,
    stream: Option<TcpStream>,
    /// Administratively severed ([`Transport::disconnect`]): no writes,
    /// no dials, until [`Transport::connect`].
    blocked: bool,
    /// Earliest time (µs on the transport clock) for the next dial.
    next_attempt_us: u64,
    /// All-time highest sequence number written, across connections —
    /// writing at or below it is a retransmission.
    max_written: u64,
}

impl Outbound {
    fn new(config: &TcpConfig) -> Self {
        Outbound {
            window: SendWindow::new(config.resend_capacity),
            backoff: Backoff::new(
                u64::try_from(config.reconnect_min.as_micros()).unwrap_or(u64::MAX),
                u64::try_from(config.reconnect_max.as_micros()).unwrap_or(u64::MAX),
            ),
            stream: None,
            blocked: false,
            next_attempt_us: 0,
            max_written: 0,
        }
    }
}

/// Inbound dedup state for one (peer, incarnation).
struct InboundState {
    incarnation: u64,
    window: DedupWindow,
}

/// The masking layer over real sockets. See the [module docs](self).
///
/// Event-driven: the host loop calls [`Transport::poll`], which yields
/// deliveries, timer firings and gap reports, and internally paces
/// reconnects and ack flushing.
pub struct TcpTransport {
    local: NodeId,
    incarnation: u64,
    obs: ObsCell,
    epoch: Instant,
    config: TcpConfig,
    listener_addr: SocketAddr,
    addrs: HashMap<NodeId, SocketAddr>,
    out: HashMap<NodeId, Outbound>,
    inbound: HashMap<NodeId, InboundState>,
    rx: mpsc::Receiver<InEvent>,
    /// Kept so the channel never disconnects while readers come and go.
    _tx: mpsc::Sender<InEvent>,
    pending: VecDeque<TransportEvent>,
    /// Cumulative acks owed, flushed from [`Transport::poll`].
    pending_acks: HashMap<NodeId, u64>,
    timers: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    timer_tags: HashMap<u64, TimerTag>,
    timer_seq: u64,
    corr_counter: u64,
    stats: MaskingStats,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    reader_streams: Arc<Mutex<Vec<TcpStream>>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("local", &self.local)
            .field("addr", &self.listener_addr)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Binds a listener on `addr` (use port 0 for an OS-assigned port)
    /// and starts the acceptor. Peers must be registered with
    /// [`TcpTransport::add_peer`] before traffic can flow to them.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn bind(local: NodeId, addr: impl ToSocketAddrs, config: TcpConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let listener_addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader_streams = Arc::new(Mutex::new(Vec::new()));
        let reader_handles = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let tx = tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let streams = Arc::clone(&reader_streams);
            let handles = Arc::clone(&reader_handles);
            std::thread::Builder::new()
                .name(format!("chtp-accept-{local}"))
                .spawn(move || accept_loop(&listener, &tx, &shutdown, &streams, &handles))?
        };
        let incarnation = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            ^ (u64::from(std::process::id()) << 32);
        Ok(TcpTransport {
            local,
            incarnation,
            obs: ObsCell::new(),
            epoch: Instant::now(),
            config,
            listener_addr,
            addrs: HashMap::new(),
            out: HashMap::new(),
            inbound: HashMap::new(),
            rx,
            _tx: tx,
            pending: VecDeque::new(),
            pending_acks: HashMap::new(),
            timers: BinaryHeap::new(),
            timer_tags: HashMap::new(),
            timer_seq: 0,
            corr_counter: 1,
            stats: MaskingStats::default(),
            shutdown,
            acceptor: Some(acceptor),
            reader_streams,
            reader_handles,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener_addr
    }

    /// Registers `peer` at `addr`. Register peers symmetrically on both
    /// endpoints: acks travel on the receiver's own outbound connection.
    pub fn add_peer(&mut self, peer: NodeId, addr: SocketAddr) {
        self.addrs.insert(peer, addr);
    }

    /// Masking-layer counters.
    #[must_use]
    pub fn stats(&self) -> MaskingStats {
        self.stats
    }

    /// Highest sequence number `peer` has cumulatively acknowledged
    /// (test/diagnostic support).
    #[must_use]
    pub fn peer_acked(&self, peer: NodeId) -> u64 {
        self.out.get(&peer).map_or(0, |o| o.window.acked())
    }

    /// Frames to `peer` dropped from the resend buffer by overflow;
    /// each will surface on the peer as a gap (test/diagnostic support).
    #[must_use]
    pub fn peer_trimmed(&self, peer: NodeId) -> u64 {
        self.out.get(&peer).map_or(0, |o| o.window.trimmed())
    }

    fn next_corr(&mut self) -> u64 {
        let counter = self.corr_counter;
        self.corr_counter += 1;
        // namespace by sender so per-process counters never collide in
        // a merged trace (+1 keeps node 0 out of the zero namespace)
        ((u64::from(self.local.as_raw()) + 1) << 40) | counter
    }

    /// Flushes every peer with queued data or owed acks: dials (with
    /// backoff) where needed, writes unsent frames, retransmits after
    /// reconnects.
    fn flush_all(&mut self) {
        let peers: BTreeSet<NodeId> = self
            .out
            .keys()
            .chain(self.pending_acks.keys())
            .copied()
            .collect();
        for peer in peers {
            self.flush_peer(peer);
        }
    }

    fn flush_peer(&mut self, peer: NodeId) {
        if !self.addrs.contains_key(&peer) {
            return;
        }
        let config = self.config;
        let mut out = self
            .out
            .remove(&peer)
            .unwrap_or_else(|| Outbound::new(&config));
        self.flush_out(peer, &mut out);
        self.out.insert(peer, out);
    }

    fn flush_out(&mut self, peer: NodeId, out: &mut Outbound) {
        if out.blocked {
            return;
        }
        let owes_ack = self.pending_acks.contains_key(&peer);
        // a dead connection holding unacked frames must redial even
        // with nothing new to write: the rewind below is what turns
        // those frames back into unsent ones for retransmission
        let needs_redial = out.stream.is_none() && out.window.in_flight() > 0;
        if out.window.unsent().next().is_none() && !owes_ack && !needs_redial {
            return;
        }
        let now = self.now_us();
        if out.stream.is_none() {
            if now < out.next_attempt_us {
                return;
            }
            let addr = self.addrs[&peer];
            let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
                .and_then(|stream| {
                    stream.set_nodelay(true)?;
                    stream.set_write_timeout(Some(self.config.connect_timeout))?;
                    Ok(stream)
                })
                .and_then(|mut stream| {
                    write_frame(&mut stream, &hello_body(self.local, self.incarnation))?;
                    Ok(stream)
                });
            match stream {
                Ok(stream) => {
                    out.stream = Some(stream);
                    out.window.rewind_sent();
                    out.backoff.reset();
                    self.stats.reconnects += 1;
                }
                Err(_) => {
                    out.next_attempt_us = now + out.backoff.next_delay_us();
                    return;
                }
            }
        }
        let frames: Vec<(u64, Vec<u8>)> = out
            .window
            .unsent()
            .map(|(seq, tail)| (seq, tail.to_vec()))
            .collect();
        for (seq, tail) in frames {
            let mut body = Vec::with_capacity(9 + tail.len());
            body.push(TAG_DATA);
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&tail);
            let stream = out.stream.as_mut().expect("connected above");
            if write_frame(stream, &body).is_err() {
                self.drop_stream(out, now);
                return;
            }
            if seq <= out.max_written {
                self.stats.resent += 1;
            } else {
                out.max_written = seq;
            }
            out.window.mark_sent(seq);
        }
        if let Some(&upto) = self.pending_acks.get(&peer) {
            let mut body = Vec::with_capacity(9);
            body.push(TAG_ACK);
            body.extend_from_slice(&upto.to_le_bytes());
            let stream = out.stream.as_mut().expect("connected above");
            if write_frame(stream, &body).is_ok() {
                self.pending_acks.remove(&peer);
            } else {
                self.drop_stream(out, now);
            }
        }
    }

    fn drop_stream(&mut self, out: &mut Outbound, now: u64) {
        self.stats.send_errors += 1;
        if let Some(stream) = out.stream.take() {
            stream.shutdown(Shutdown::Both).ok();
        }
        out.next_attempt_us = now + out.backoff.next_delay_us();
    }

    fn handle_in(&mut self, event: InEvent) {
        match event.frame {
            InFrame::Data {
                seq,
                corr,
                send_lc,
                payload,
            } => {
                let entry = self.inbound.entry(event.peer).or_insert(InboundState {
                    incarnation: event.incarnation,
                    window: DedupWindow::new(),
                });
                if entry.incarnation != event.incarnation {
                    // the peer restarted: its sequence numbers started
                    // over, so the old high-water mark is meaningless
                    *entry = InboundState {
                        incarnation: event.incarnation,
                        window: DedupWindow::new(),
                    };
                }
                let verdict = entry.window.accept(seq);
                let high = entry.window.high();
                match verdict {
                    Accept::Duplicate => self.stats.duplicates += 1,
                    Accept::Fresh | Accept::Gap { .. } => {
                        if let Accept::Gap { expected, got } = verdict {
                            self.stats.gaps += 1;
                            self.pending.push_back(TransportEvent::Gap {
                                from: event.peer,
                                expected,
                                got,
                            });
                        }
                        match wire::decode(&payload) {
                            Ok(msg) => {
                                self.stats.fresh += 1;
                                self.pending.push_back(TransportEvent::Deliver {
                                    from: event.peer,
                                    msg,
                                    corr,
                                    send_lc,
                                });
                            }
                            Err(_) => self.stats.decode_errors += 1,
                        }
                    }
                }
                if let Some(high) = high {
                    self.pending_acks.insert(event.peer, high);
                }
            }
            InFrame::Ack { upto } => {
                if let Some(out) = self.out.get_mut(&event.peer) {
                    out.window.ack(upto);
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> NodeId {
        self.local
    }

    fn obs(&self) -> Obs {
        self.obs.get()
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn send(&mut self, to: NodeId, msg: Message) {
        let from = self.local;
        let kind = msg.kind();
        let corr = self.next_corr();
        let obs = self.obs.get();
        // the trace line is written before the frame can reach the
        // wire: a crash in between loses the message, never the send
        // event, so merged traces cannot contain orphan receives
        let send_lc = obs
            .emit_corr(corr, EventKind::MsgSend { from, to, kind })
            .map_or(0, |e| e.lc);
        if !self.addrs.contains_key(&to) {
            self.stats.send_errors += 1;
            obs.emit_corr(corr, EventKind::MsgDrop { from, to, kind });
            return;
        }
        let payload = wire::encode(&msg);
        let mut tail = Vec::with_capacity(20 + payload.len());
        tail.extend_from_slice(&corr.to_le_bytes());
        tail.extend_from_slice(&send_lc.to_le_bytes());
        tail.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("message below frame cap")
                .to_le_bytes(),
        );
        tail.extend_from_slice(&payload);
        let config = self.config;
        self.out
            .entry(to)
            .or_insert_with(|| Outbound::new(&config))
            .window
            .push(tail);
        self.flush_peer(to);
    }

    fn set_timer(&mut self, delay_us: u64, tag: TimerTag) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        let at = self.now_us().saturating_add(delay_us);
        self.timers.push(std::cmp::Reverse((at, seq)));
        self.timer_tags.insert(seq, tag);
    }

    fn connect(&mut self, peer: NodeId) {
        let config = self.config;
        let out = self
            .out
            .entry(peer)
            .or_insert_with(|| Outbound::new(&config));
        out.blocked = false;
        out.next_attempt_us = 0;
        out.backoff.reset();
        self.flush_peer(peer);
    }

    fn disconnect(&mut self, peer: NodeId) {
        let config = self.config;
        let out = self
            .out
            .entry(peer)
            .or_insert_with(|| Outbound::new(&config));
        out.blocked = true;
        if let Some(stream) = out.stream.take() {
            stream.shutdown(Shutdown::Both).ok();
        }
    }

    fn poll(&mut self, timeout: Option<Duration>) -> Option<TransportEvent> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(event) = self.pending.pop_front() {
                return Some(event);
            }
            let now = self.now_us();
            while let Some(&std::cmp::Reverse((at, seq))) = self.timers.peek() {
                if at > now {
                    break;
                }
                self.timers.pop();
                if let Some(tag) = self.timer_tags.remove(&seq) {
                    self.pending.push_back(TransportEvent::Timer { tag });
                }
            }
            if !self.pending.is_empty() {
                continue;
            }
            self.flush_all();
            let mut wait = Duration::from_millis(10);
            if let Some(&std::cmp::Reverse((at, _))) = self.timers.peek() {
                wait = wait.min(Duration::from_micros(at.saturating_sub(now)));
            }
            if let Some(deadline) = deadline {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return None;
                }
                wait = wait.min(left);
            }
            match self.rx.recv_timeout(wait) {
                Ok(event) => {
                    self.handle_in(event);
                    // drain whatever else already queued, without waiting
                    while let Ok(event) = self.rx.try_recv() {
                        self.handle_in(event);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return None;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return None,
            }
        }
    }
}

impl Observable for TcpTransport {
    fn install_obs(&self, obs: Obs) {
        self.obs.set(obs);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for out in self.out.values_mut() {
            if let Some(stream) = out.stream.take() {
                stream.shutdown(Shutdown::Both).ok();
            }
        }
        // unblock reader threads stuck in read_exact
        for stream in self.reader_streams.lock().drain(..) {
            stream.shutdown(Shutdown::Both).ok();
        }
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().ok();
        }
        let handles: Vec<JoinHandle<()>> = self.reader_handles.lock().drain(..).collect();
        for handle in handles {
            handle.join().ok();
        }
    }
}

fn hello_body(local: NodeId, incarnation: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(18);
    body.push(TAG_HELLO);
    body.extend_from_slice(&HELLO_MAGIC);
    body.push(HELLO_VERSION);
    body.extend_from_slice(&local.as_raw().to_le_bytes());
    body.extend_from_slice(&incarnation.to_le_bytes());
    body
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len()).map_err(|_| io::ErrorKind::InvalidInput)?;
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(body);
    stream.write_all(&buf)
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::ErrorKind::InvalidData.into());
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

fn accept_loop(
    listener: &TcpListener,
    tx: &mpsc::Sender<InEvent>,
    shutdown: &Arc<AtomicBool>,
    streams: &Arc<Mutex<Vec<TcpStream>>>,
    handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    streams.lock().push(clone);
                }
                let tx = tx.clone();
                let shutdown = Arc::clone(shutdown);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("chtp-read".into())
                    .spawn(move || read_loop(stream, &tx, &shutdown))
                {
                    handles.lock().push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn read_loop(mut stream: TcpStream, tx: &mpsc::Sender<InEvent>, shutdown: &Arc<AtomicBool>) {
    // a connection introduces itself before carrying traffic
    let Ok(hello) = read_frame(&mut stream) else {
        return;
    };
    let Some((peer, incarnation)) = parse_hello(&hello) else {
        return;
    };
    while !shutdown.load(Ordering::SeqCst) {
        let Ok(body) = read_frame(&mut stream) else {
            return;
        };
        let Some(frame) = parse_frame(&body) else {
            return; // corrupt stream: kill the connection, sender redials
        };
        if tx
            .send(InEvent {
                peer,
                incarnation,
                frame,
            })
            .is_err()
        {
            return;
        }
    }
}

fn parse_hello(body: &[u8]) -> Option<(NodeId, u64)> {
    if body.len() != 18 || body[0] != TAG_HELLO {
        return None;
    }
    if body[1..5] != HELLO_MAGIC || body[5] != HELLO_VERSION {
        return None;
    }
    let node = u32::from_le_bytes(body[6..10].try_into().ok()?);
    let incarnation = u64::from_le_bytes(body[10..18].try_into().ok()?);
    Some((NodeId::from_raw(node), incarnation))
}

fn parse_frame(body: &[u8]) -> Option<InFrame> {
    match *body.first()? {
        TAG_DATA => {
            if body.len() < 29 {
                return None;
            }
            let seq = u64::from_le_bytes(body[1..9].try_into().ok()?);
            let corr = u64::from_le_bytes(body[9..17].try_into().ok()?);
            let send_lc = u64::from_le_bytes(body[17..25].try_into().ok()?);
            let len = u32::from_le_bytes(body[25..29].try_into().ok()?) as usize;
            if body.len() != 29 + len {
                return None;
            }
            Some(InFrame::Data {
                seq,
                corr,
                send_lc,
                payload: body[29..].to_vec(),
            })
        }
        TAG_ACK => {
            if body.len() != 9 {
                return None;
            }
            Some(InFrame::Ack {
                upto: u64::from_le_bytes(body[1..9].try_into().ok()?),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let body = hello_body(NodeId::from_raw(7), 0xDEAD_BEEF);
        assert_eq!(parse_hello(&body), Some((NodeId::from_raw(7), 0xDEAD_BEEF)));
    }

    #[test]
    fn hello_rejects_wrong_magic_and_version() {
        let mut body = hello_body(NodeId::from_raw(7), 1);
        body[1] = b'X';
        assert_eq!(parse_hello(&body), None);
        let mut body = hello_body(NodeId::from_raw(7), 1);
        body[5] = HELLO_VERSION + 1;
        assert_eq!(parse_hello(&body), None);
    }

    #[test]
    fn data_frame_parses_and_rejects_truncation() {
        let payload = wire::encode(&Message::Ack {
            txn: crate::msg::TxnId(3),
        });
        let mut body = vec![TAG_DATA];
        body.extend_from_slice(&5u64.to_le_bytes());
        body.extend_from_slice(&77u64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        body.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
        body.extend_from_slice(&payload);
        match parse_frame(&body) {
            Some(InFrame::Data {
                seq,
                corr,
                send_lc,
                payload: p,
            }) => {
                assert_eq!((seq, corr, send_lc), (5, 77, 9));
                assert!(wire::decode(&p).is_ok());
            }
            _ => panic!("expected data frame"),
        }
        assert!(parse_frame(&body[..body.len() - 1]).is_none());
        assert!(parse_frame(&[99]).is_none());
    }

    #[test]
    fn loopback_pair_delivers_and_acks() {
        let (a_id, b_id) = (NodeId::from_raw(1), NodeId::from_raw(2));
        let mut a = TcpTransport::bind(a_id, "127.0.0.1:0", TcpConfig::default()).unwrap();
        let mut b = TcpTransport::bind(b_id, "127.0.0.1:0", TcpConfig::default()).unwrap();
        a.add_peer(b_id, b.local_addr());
        b.add_peer(a_id, a.local_addr());
        a.send(
            b_id,
            Message::Ack {
                txn: crate::msg::TxnId(1),
            },
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut delivered = false;
        while Instant::now() < deadline && !(delivered && a.peer_acked(b_id) >= 1) {
            if let Some(TransportEvent::Deliver { from, msg, .. }) =
                b.poll(Some(Duration::from_millis(20)))
            {
                assert_eq!(from, a_id);
                assert_eq!(
                    msg,
                    Message::Ack {
                        txn: crate::msg::TxnId(1),
                    }
                );
                delivered = true;
            }
            a.poll(Some(Duration::from_millis(5)));
        }
        assert!(delivered, "frame never arrived");
        assert_eq!(b.stats().fresh, 1);
        assert!(
            a.peer_acked(b_id) >= 1,
            "cumulative ack never travelled back"
        );
    }
}
