//! The deterministic discrete-event simulation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::Duration;

use chroma_base::NodeId;
use chroma_obs::{EventKind, Obs, ObsCell, Observable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::msg::{CorrId, Effect, Message, TimerTag, TxnId, Write};
use crate::node::Node;
use crate::transport::{dispatch, Cluster, Transport, TransportEvent};
use crate::wire;

/// Network behaviour knobs (the paper's §2 failure model: messages may
/// be lost, duplicated or delayed).
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Probability a message is silently dropped.
    pub loss: f64,
    /// Probability a message is delivered twice.
    pub duplication: f64,
    /// Minimum delivery delay (simulated µs).
    pub delay_min: u64,
    /// Maximum delivery delay (simulated µs).
    pub delay_max: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            loss: 0.0,
            duplication: 0.0,
            delay_min: 500,
            delay_max: 2_000,
        }
    }
}

/// A scheduled occurrence.
#[derive(Clone, Debug)]
enum Event {
    Deliver {
        from: NodeId,
        to: NodeId,
        /// The message in shared wire encoding ([`crate::wire`]): sim
        /// traffic goes through the same codec as TCP traffic, so codec
        /// bugs surface in deterministic tests too.
        payload: Vec<u8>,
        /// Correlation id pairing this delivery with its send event
        /// (duplicated deliveries share the original's).
        corr: CorrId,
        /// The sender's Lamport clock at send time, merged into the
        /// receiver's clock on delivery.
        send_lc: u64,
    },
    Timer {
        node: NodeId,
        tag: TimerTag,
    },
    Crash {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
}

/// Counters describing what the network did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered (duplicates counted).
    pub delivered: u64,
    /// Messages dropped by loss injection or because the target was
    /// down.
    pub dropped: u64,
    /// Extra deliveries created by duplication injection.
    pub duplicated: u64,
}

/// A deterministic simulation of fail-silent nodes on a lossy network.
///
/// All randomness (delays, loss, duplication) flows from one seeded RNG:
/// the same seed and the same call sequence replay the same history,
/// which is what makes protocol fault-injection tests debuggable.
///
/// # Examples
///
/// ```
/// use chroma_base::{NodeId, ObjectId};
/// use chroma_dist::{Sim, Write};
/// use chroma_store::StoreBytes;
///
/// let mut sim = Sim::new(42);
/// let (a, b) = (sim.add_node(), sim.add_node());
/// let o = ObjectId::from_raw(1);
/// let txn = sim.begin_transaction(
///     a,
///     vec![(b, vec![Write { object: o, state: StoreBytes::from(vec![7]) }])],
/// );
/// sim.run_to_quiescence();
/// assert_eq!(sim.coordinator_outcome(a, txn), Some(true));
/// assert_eq!(sim.node(b).store.read(o).as_deref(), Some(&[7u8][..]));
/// ```
#[derive(Debug)]
pub struct Sim {
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    events: HashMap<(u64, u64), Event>,
    rng: StdRng,
    nodes: HashMap<NodeId, Node>,
    next_node: u32,
    next_txn: u64,
    /// Correlation ids, one per logical send (duplicates share it).
    next_corr: CorrId,
    /// Network behaviour; adjust freely between runs.
    pub net: NetConfig,
    stats: NetStats,
    /// Severed links (unordered pairs): messages between these nodes are
    /// dropped until the partition heals.
    partitions: HashSet<(NodeId, NodeId)>,
    /// Event trace (bounded), populated when enabled.
    trace: Option<Vec<TraceEntry>>,
    /// Observability handle; stamped with simulated time each step.
    obs: ObsCell,
}

/// One traced simulation event (see [`Sim::enable_trace`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time of the event (µs).
    pub at: u64,
    /// Human-readable description.
    pub what: String,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>10}µs] {}", self.at, self.what)
    }
}

impl Sim {
    /// Creates a simulation with the given RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            nodes: HashMap::new(),
            next_node: 0,
            next_txn: 1,
            next_corr: 1,
            net: NetConfig::default(),
            stats: NetStats::default(),
            partitions: HashSet::new(),
            trace: None,
            obs: ObsCell::new(),
        }
    }

    fn sync_time(&self) {
        let obs = self.obs();
        if let Some(bus) = obs.bus() {
            bus.set_time_us(self.now);
        }
    }

    /// The simulation's observability handle (inert until
    /// [`Observable::install_obs`]) — lets protocols layered on top of
    /// the simulation (replica groups, the partitioned backend) emit
    /// into the same simulated-time trace.
    #[must_use]
    pub fn obs(&self) -> Obs {
        self.obs.get()
    }

    /// Starts recording an event trace (delivered messages, drops,
    /// timers, crashes, recoveries). Bounded to the most recent 10 000
    /// entries; intended for debugging protocol schedules.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Returns the recorded trace (empty if tracing is off).
    #[must_use]
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, what: String) {
        let at = self.now;
        if let Some(trace) = &mut self.trace {
            if trace.len() >= 10_000 {
                trace.remove(0);
            }
            trace.push(TraceEntry { at, what });
        }
    }

    /// Severs the link between `a` and `b` (both directions): messages
    /// between them are dropped until [`Sim::heal_partition`].
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert(Self::link(a, b));
    }

    /// Restores the link between `a` and `b`.
    pub fn heal_partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&Self::link(a, b));
    }

    /// Severs every link between the `left` group and the rest of the
    /// nodes (a clean network split).
    pub fn partition_group(&mut self, left: &[NodeId]) {
        let right: Vec<NodeId> = self
            .node_ids()
            .into_iter()
            .filter(|n| !left.contains(n))
            .collect();
        for &a in left {
            for &b in &right {
                self.partition(a, b);
            }
        }
    }

    /// Heals every partition.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    fn link(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_raw(self.next_node);
        self.next_node += 1;
        let node = Node::new(id);
        let obs = self.obs();
        if obs.enabled() {
            node.install_obs(obs);
        }
        self.nodes.insert(id, node);
        id
    }

    /// Returns the current simulated time (µs).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Returns the network counters.
    #[must_use]
    pub fn net_stats(&self) -> NetStats {
        self.stats
    }

    /// Returns a reference to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        self.nodes.get(&id).expect("unknown node")
    }

    /// Returns a mutable reference to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes.get_mut(&id).expect("unknown node")
    }

    /// Returns the ids of all nodes.
    #[must_use]
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort();
        ids
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    fn push(&mut self, at: u64, event: Event) {
        let key = (at, self.seq);
        self.seq += 1;
        self.queue.push(Reverse(key));
        self.events.insert(key, event);
    }

    /// Schedules a crash of `node` after `delay` µs.
    pub fn schedule_crash(&mut self, node: NodeId, delay: u64) {
        self.push(self.now + delay, Event::Crash { node });
    }

    /// Schedules a recovery of `node` after `delay` µs.
    pub fn schedule_recover(&mut self, node: NodeId, delay: u64) {
        self.push(self.now + delay, Event::Recover { node });
    }

    /// Applies a node's effects: messages enter the (lossy) network,
    /// timers are queued.
    fn apply_effects(&mut self, origin: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.send(origin, to, msg),
                Effect::SetTimer { delay, tag } => {
                    self.push(self.now + delay, Event::Timer { node: origin, tag });
                }
            }
        }
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        self.stats.sent += 1;
        let kind = msg.kind();
        let corr = self.next_corr;
        self.next_corr += 1;
        // the send's Lamport clock travels with the message, so the
        // receive side can merge past it (untraced runs carry 0)
        let send_lc = self
            .obs()
            .emit_corr(corr, EventKind::MsgSend { from, to, kind })
            .map_or(0, |e| e.lc);
        if self.partitions.contains(&Self::link(from, to)) {
            self.stats.dropped += 1;
            self.obs()
                .emit_corr(corr, EventKind::MsgDrop { from, to, kind });
            return;
        }
        if self.rng.gen_bool(self.net.loss.clamp(0.0, 1.0)) {
            self.stats.dropped += 1;
            self.obs()
                .emit_corr(corr, EventKind::MsgDrop { from, to, kind });
            return;
        }
        let payload = wire::encode(&msg);
        let delay = self.rng.gen_range(self.net.delay_min..=self.net.delay_max);
        self.push(
            self.now + delay,
            Event::Deliver {
                from,
                to,
                payload: payload.clone(),
                corr,
                send_lc,
            },
        );
        if self.rng.gen_bool(self.net.duplication.clamp(0.0, 1.0)) {
            self.stats.duplicated += 1;
            self.obs()
                .emit_corr(corr, EventKind::MsgDup { from, to, kind });
            let delay = self.rng.gen_range(self.net.delay_min..=self.net.delay_max);
            self.push(
                self.now + delay,
                Event::Deliver {
                    from,
                    to,
                    payload,
                    corr,
                    send_lc,
                },
            );
        }
    }

    /// Runs one transport event against `id`'s node through the shared
    /// [`dispatch`] path. The node is lifted out of the map for the
    /// duration so the [`SimTransport`] view can borrow the simulation
    /// mutably.
    fn dispatch_to(&mut self, id: NodeId, event: TransportEvent) {
        let mut node = self.nodes.remove(&id).expect("node present");
        let mut view = SimTransport { sim: self, id };
        dispatch(&mut node, &mut view, event);
        self.nodes.insert(id, node);
    }

    /// Processes the next event; returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(key)) = self.queue.pop() else {
            return false;
        };
        let event = self.events.remove(&key).expect("event present");
        self.now = key.0;
        self.sync_time();
        match event {
            Event::Deliver {
                from,
                to,
                payload,
                corr,
                send_lc,
            } => {
                let msg = wire::decode(&payload).expect("sim frames use the shared wire codec");
                if self.trace.is_some() {
                    let up = self.nodes.get(&to).is_some_and(|n| n.up);
                    self.record(format!(
                        "{from} -> {to}: {msg:?}{}",
                        if up { "" } else { " (DROPPED: target down)" }
                    ));
                }
                let kind = msg.kind();
                let obs = self.obs();
                let Some(node) = self.nodes.get(&to) else {
                    return true;
                };
                if !node.up {
                    self.stats.dropped += 1;
                    obs.emit_corr(corr, EventKind::MsgDrop { from, to, kind });
                    return true;
                }
                self.stats.delivered += 1;
                self.dispatch_to(
                    to,
                    TransportEvent::Deliver {
                        from,
                        msg,
                        corr,
                        send_lc,
                    },
                );
            }
            Event::Timer { node: id, tag } => {
                let Some(node) = self.nodes.get(&id) else {
                    return true;
                };
                if !node.up {
                    return true;
                }
                self.dispatch_to(id, TransportEvent::Timer { tag });
            }
            Event::Crash { node: id } => {
                self.record(format!("{id} CRASH"));
                if let Some(node) = self.nodes.get_mut(&id) {
                    let was_up = node.up;
                    node.crash();
                    if was_up {
                        self.obs().emit(EventKind::NodeCrash { node: id });
                    }
                }
            }
            Event::Recover { node: id } => {
                self.record(format!("{id} RECOVER"));
                let effects = match self.nodes.get_mut(&id) {
                    Some(node) if !node.up => {
                        let effects = node.recover();
                        self.obs().emit(EventKind::NodeRecover { node: id });
                        effects
                    }
                    _ => Vec::new(),
                };
                self.apply_effects(id, effects);
            }
        }
        true
    }

    /// Runs until the event queue drains or `max_events` is exceeded.
    /// Returns the number of events processed.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events && self.step() {
            processed += 1;
        }
        processed
    }

    /// Runs until quiescence with a generous safety bound.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to quiesce within the bound (a
    /// protocol livelock — a test failure worth loud reporting).
    pub fn run_to_quiescence(&mut self) {
        const BOUND: u64 = 2_000_000;
        let processed = self.run(BOUND);
        assert!(
            processed < BOUND,
            "simulation did not quiesce within {BOUND} events"
        );
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Starts a distributed transaction coordinated by `coordinator`;
    /// `writes` lists `(participant, writes)` pairs. Returns the
    /// transaction id.
    pub fn begin_transaction(
        &mut self,
        coordinator: NodeId,
        writes: Vec<(NodeId, Vec<Write>)>,
    ) -> TxnId {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let map: HashMap<NodeId, Vec<Write>> = writes.into_iter().collect();
        let effects = self
            .nodes
            .get_mut(&coordinator)
            .expect("unknown coordinator")
            .begin_transaction(txn, map);
        self.apply_effects(coordinator, effects);
        txn
    }

    /// Returns the coordinator's decision for `txn`, if reached.
    #[must_use]
    pub fn coordinator_outcome(&self, coordinator: NodeId, txn: TxnId) -> Option<bool> {
        self.node(coordinator).coordinator_outcome(txn)
    }

    /// Starts an at-most-once RPC from `client` to `server`. Returns
    /// the call id (poll via [`Node::rpc_reply`] on the client).
    pub fn rpc(&mut self, client: NodeId, server: NodeId, op: &crate::node::RpcOp) -> u64 {
        let (call, effects) = self
            .nodes
            .get_mut(&client)
            .expect("unknown client")
            .rpc_call(server, op);
        self.apply_effects(client, effects);
        call
    }

    /// Returns node `id`'s [`Transport`] view of the simulation —
    /// sends enter the seeded lossy network, timers join the event
    /// queue, connect/disconnect map to partition healing/severing.
    pub fn transport(&mut self, id: NodeId) -> SimTransport<'_> {
        SimTransport { sim: self, id }
    }
}

/// One node's [`Transport`] view of a [`Sim`]: the simulator side of
/// the trait [`TcpTransport`](crate::TcpTransport) implements with real
/// sockets.
///
/// Push-driven: the scheduler dispatches deliveries and timers eagerly,
/// so [`poll`](Transport::poll) always returns `None`.
#[derive(Debug)]
pub struct SimTransport<'a> {
    sim: &'a mut Sim,
    id: NodeId,
}

impl Transport for SimTransport<'_> {
    fn local(&self) -> NodeId {
        self.id
    }

    fn obs(&self) -> Obs {
        self.sim.obs()
    }

    fn now_us(&self) -> u64 {
        self.sim.now
    }

    fn send(&mut self, to: NodeId, msg: Message) {
        self.sim.send(self.id, to, msg);
    }

    fn set_timer(&mut self, delay_us: u64, tag: TimerTag) {
        let at = self.sim.now + delay_us;
        self.sim.push(at, Event::Timer { node: self.id, tag });
    }

    fn connect(&mut self, peer: NodeId) {
        self.sim.heal_partition(self.id, peer);
    }

    fn disconnect(&mut self, peer: NodeId) {
        self.sim.partition(self.id, peer);
    }

    fn poll(&mut self, _timeout: Option<Duration>) -> Option<TransportEvent> {
        None
    }
}

impl Cluster for Sim {
    fn node(&self, id: NodeId) -> &Node {
        Sim::node(self, id)
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        Sim::node_mut(self, id)
    }

    fn obs(&self) -> Obs {
        Sim::obs(self)
    }

    fn begin_transaction(
        &mut self,
        coordinator: NodeId,
        writes: Vec<(NodeId, Vec<Write>)>,
    ) -> TxnId {
        Sim::begin_transaction(self, coordinator, writes)
    }
}

impl Observable for Sim {
    /// Installs a shared observability handle: every node (current and
    /// future) emits through it, and the simulation stamps its events
    /// with simulated time and reports network and crash activity.
    fn install_obs(&self, obs: Obs) {
        for node in self.nodes.values() {
            node.install_obs(obs.clone());
        }
        self.obs.set(obs);
        self.sync_time();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chroma_base::ObjectId;
    use chroma_store::StoreBytes;

    fn write(n: u64, v: u8) -> Write {
        Write {
            object: ObjectId::from_raw(n),
            state: StoreBytes::from(vec![v]),
        }
    }

    #[test]
    fn clean_commit_installs_everywhere() {
        let mut sim = Sim::new(1);
        let a = sim.add_node();
        let b = sim.add_node();
        let c = sim.add_node();
        let txn = sim.begin_transaction(
            a,
            vec![
                (b, vec![write(1, 10)]),
                (c, vec![write(2, 20)]),
                (a, vec![write(3, 30)]),
            ],
        );
        sim.run_to_quiescence();
        assert_eq!(sim.coordinator_outcome(a, txn), Some(true));
        assert_eq!(
            sim.node(b).store.read(ObjectId::from_raw(1)).as_deref(),
            Some(&[10u8][..])
        );
        assert_eq!(
            sim.node(c).store.read(ObjectId::from_raw(2)).as_deref(),
            Some(&[20u8][..])
        );
        assert_eq!(
            sim.node(a).store.read(ObjectId::from_raw(3)).as_deref(),
            Some(&[30u8][..])
        );
    }

    #[test]
    fn veto_aborts_and_installs_nothing() {
        let mut sim = Sim::new(2);
        let a = sim.add_node();
        let b = sim.add_node();
        // b will vote no on the first transaction (TxnId(1)).
        sim.node_mut(b).veto.insert(TxnId(1));
        let txn = sim.begin_transaction(a, vec![(a, vec![write(1, 1)]), (b, vec![write(2, 2)])]);
        sim.run_to_quiescence();
        assert_eq!(sim.coordinator_outcome(a, txn), None); // presumed abort
        assert!(sim.node(a).store.read(ObjectId::from_raw(1)).is_none());
        assert!(sim.node(b).store.read(ObjectId::from_raw(2)).is_none());
    }

    #[test]
    fn commit_survives_message_loss() {
        let mut sim = Sim::new(3);
        sim.net.loss = 0.3;
        sim.net.duplication = 0.2;
        let a = sim.add_node();
        let b = sim.add_node();
        let txn = sim.begin_transaction(a, vec![(b, vec![write(1, 9)])]);
        sim.run_to_quiescence();
        // With retries the transaction reaches a decision; if prepare
        // never got through it aborted — either way both sides agree.
        match sim.coordinator_outcome(a, txn) {
            Some(true) => assert_eq!(
                sim.node(b).store.read(ObjectId::from_raw(1)).as_deref(),
                Some(&[9u8][..])
            ),
            _ => assert!(sim.node(b).store.read(ObjectId::from_raw(1)).is_none()),
        }
        assert!(!sim.node(b).in_doubt(txn));
    }

    #[test]
    fn rpc_round_trip_with_duplication() {
        let mut sim = Sim::new(4);
        sim.net.duplication = 0.5;
        sim.net.loss = 0.2;
        let client = sim.add_node();
        let server = sim.add_node();
        let call = sim.rpc(client, server, &crate::node::RpcOp::Put(7, vec![1, 2]));
        sim.run_to_quiescence();
        assert!(sim.node(client).rpc_reply(call).is_some());
        // At-most-once: despite duplicates, exactly one execution.
        assert_eq!(sim.node(server).rpc_executed(), 1);
        assert_eq!(
            sim.node(server)
                .store
                .read(ObjectId::from_raw(7))
                .as_deref(),
            Some(&[1u8, 2][..])
        );
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed: u64| {
            let mut sim = Sim::new(seed);
            sim.net.loss = 0.2;
            let a = sim.add_node();
            let b = sim.add_node();
            let txn = sim.begin_transaction(a, vec![(b, vec![write(1, 5)])]);
            sim.run_to_quiescence();
            (sim.coordinator_outcome(a, txn), sim.net_stats(), sim.now())
        };
        assert_eq!(run(99), run(99));
    }
}
