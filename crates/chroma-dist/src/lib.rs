//! A deterministic simulated distributed system for chroma: fail-silent
//! nodes with stable storage, a lossy/duplicating/delaying network,
//! at-most-once RPC, presumed-abort two-phase commit, and replicated
//! objects (read-one / write-all-available).
//!
//! This crate is the substrate the paper assumes (§2): workstations that
//! fail silently and recover, stable storage that survives crashes, and
//! a communication subsystem whose failures (lost/duplicated messages)
//! are masked by protocol-level retransmission and deduplication.
//! Everything is driven by a discrete-event simulation ([`Sim`]) with a
//! single seeded RNG, so fault-injection experiments are exactly
//! reproducible.
//!
//! The commit protocol here is what a *distributed* chroma deployment
//! would run when an outermost coloured action spans object stores on
//! several nodes; the experiments in `EXPERIMENTS.md` (A3, A4) validate
//! its atomicity and the availability gain from replication under
//! crash/loss schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod masking;
mod msg;
mod node;
mod replica;
mod sim;
mod tcp;
mod transport;
pub mod wire;

pub use backend::PartitionedStore;
pub use masking::{Accept, Backoff, DedupWindow, SendWindow};
pub use msg::{CorrId, Effect, Message, TimerTag, TxnId, Write};
pub use node::{
    Node, NodeBuilder, RpcOp, RpcResult, TpcRecord, MAX_DECISION_ATTEMPTS, MAX_PREPARE_ATTEMPTS,
    RETRY_INTERVAL,
};
pub use replica::ReplicatedObject;
pub use sim::{NetConfig, NetStats, Sim, SimTransport, TraceEntry};
pub use tcp::{MaskingStats, TcpConfig, TcpTransport};
pub use transport::{dispatch, dispatch_with, Cluster, Transport, TransportEvent};
