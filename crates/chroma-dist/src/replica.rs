//! Object replication: read-one / write-all-available over 2PC.
//!
//! The paper (§2) notes that "the availability of objects can be
//! increased by replicating them and storing them in more than one
//! object store. Replicated objects must be managed through appropriate
//! replica-consistency protocols." This module provides that substrate
//! for the simulated distributed system:
//!
//! * a **write** updates every *available* (up) replica atomically via
//!   two-phase commit, bumping a version counter;
//! * a **read** is served by any single up-to-date replica;
//! * a **recovering** replica marks its copies stale and pulls current
//!   state from its peers before serving reads again.

use chroma_base::{NodeId, ObjectId};
use chroma_obs::EventKind;
use chroma_store::StoreBytes;

use crate::msg::{TxnId, Write};
use crate::node::RETRY_INTERVAL;
use crate::sim::Sim;
use crate::transport::Cluster;

/// A replicated object: one logical object stored at several nodes.
///
/// # Examples
///
/// ```
/// use chroma_base::ObjectId;
/// use chroma_dist::{ReplicatedObject, Sim};
///
/// let mut sim = Sim::new(7);
/// let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
/// let replica = ReplicatedObject::create(&mut sim, ObjectId::from_raw(1), &nodes, b"v0");
/// replica.write(&mut sim, b"v1");
/// sim.run_to_quiescence();
/// let (version, state) = replica.read(&sim).expect("available");
/// assert_eq!(version, 1);
/// assert_eq!(&state[..], b"v1");
/// ```
#[derive(Clone, Debug)]
pub struct ReplicatedObject {
    object: ObjectId,
    members: Vec<NodeId>,
}

impl ReplicatedObject {
    /// Creates a replicated object with an initial state at every
    /// member (version 0), and registers the peer sets used for
    /// pull-on-recover.
    ///
    /// Generic over [`Cluster`], so the same replication layer runs on
    /// the simulator or any other host of a node group.
    pub fn create<C: Cluster>(
        cluster: &mut C,
        object: ObjectId,
        members: &[NodeId],
        initial: &[u8],
    ) -> Self {
        for &member in members {
            let peers: Vec<NodeId> = members.iter().copied().filter(|&m| m != member).collect();
            let node = cluster.node_mut(member);
            node.write_versioned(object, 0, initial);
            node.replica_peers.insert(object, peers);
        }
        ReplicatedObject {
            object,
            members: members.to_vec(),
        }
    }

    /// Returns the logical object id.
    #[must_use]
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Returns the member nodes.
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Writes a new state to all *available* replicas atomically
    /// (write-all-available). Returns the transaction id, or `None` if
    /// no replica is up (the object is unavailable for writing).
    ///
    /// The new version is one above the highest version among up
    /// replicas; run the simulation to quiescence for the write to
    /// settle.
    pub fn write<C: Cluster>(&self, cluster: &mut C, state: &[u8]) -> Option<TxnId> {
        let up: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|&m| cluster.node(m).up)
            .collect();
        let coordinator = *up.first()?;
        let version = up
            .iter()
            .filter_map(|&m| cluster.node(m).read_versioned(self.object).map(|(v, _)| v))
            .max()
            .unwrap_or(0)
            + 1;
        // Attribute the write to the coordinating replica so the trace
        // shows which node drove the 2PC round.
        cluster
            .obs()
            .at_node(coordinator)
            .emit(EventKind::ReplicaWrite {
                object: self.object,
                version,
                fanout: up.len() as u64,
            });
        let bytes = chroma_store::codec::to_bytes(&(version, state.to_vec()))
            .expect("versioned state encodes");
        let writes: Vec<(NodeId, Vec<Write>)> = up
            .iter()
            .map(|&m| {
                (
                    m,
                    vec![Write {
                        object: self.object,
                        state: StoreBytes::from(bytes.clone()),
                    }],
                )
            })
            .collect();
        Some(cluster.begin_transaction(coordinator, writes))
    }

    /// Reads from any single up, non-stale replica (read-one),
    /// preferring the freshest available copy. Returns `None` if no
    /// such replica exists (the object is unavailable).
    #[must_use]
    pub fn read<C: Cluster>(&self, cluster: &C) -> Option<(u64, StoreBytes)> {
        let (member, version, state) = self
            .members
            .iter()
            .copied()
            .filter(|&m| {
                let node = cluster.node(m);
                node.up && !node.stale.contains(&self.object)
            })
            .filter_map(|m| {
                cluster
                    .node(m)
                    .read_versioned(self.object)
                    .map(|(v, s)| (m, v, s))
            })
            .max_by_key(|&(_, version, _)| version)?;
        cluster.obs().emit(EventKind::ReplicaRead {
            node: member,
            object: self.object,
            version,
            // the filter above excludes stale copies; report the
            // serving copy's actual flag so a filtering bug is visible
            // in the trace rather than masked
            stale: cluster.node(member).stale.contains(&self.object),
        });
        Some((version, state))
    }

    /// Returns each up member's `(node, version)` — for convergence
    /// assertions in tests.
    #[must_use]
    pub fn versions<C: Cluster>(&self, cluster: &C) -> Vec<(NodeId, u64)> {
        self.members
            .iter()
            .copied()
            .filter(|&m| cluster.node(m).up)
            .filter_map(|m| {
                cluster
                    .node(m)
                    .read_versioned(self.object)
                    .map(|(v, _)| (m, v))
            })
            .collect()
    }

    /// Crashes `member` now and schedules its recovery after `downtime`
    /// µs; on recovery it will pull fresh state from peers.
    pub fn crash_member(&self, sim: &mut Sim, member: NodeId, downtime: u64) {
        sim.schedule_crash(member, 0);
        sim.schedule_recover(member, downtime.max(RETRY_INTERVAL));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o() -> ObjectId {
        ObjectId::from_raw(100)
    }

    #[test]
    fn writes_bump_versions_on_all_members() {
        let mut sim = Sim::new(11);
        let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
        let replica = ReplicatedObject::create(&mut sim, o(), &nodes, b"init");
        replica.write(&mut sim, b"one");
        sim.run_to_quiescence();
        replica.write(&mut sim, b"two");
        sim.run_to_quiescence();
        let versions = replica.versions(&sim);
        assert_eq!(versions.len(), 3);
        assert!(versions.iter().all(|&(_, v)| v == 2));
        assert_eq!(&replica.read(&sim).unwrap().1[..], b"two");
    }

    #[test]
    fn reads_survive_a_minority_crash() {
        let mut sim = Sim::new(12);
        let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
        let replica = ReplicatedObject::create(&mut sim, o(), &nodes, b"init");
        replica.write(&mut sim, b"v1");
        sim.run_to_quiescence();
        sim.schedule_crash(nodes[0], 0);
        sim.run_to_quiescence();
        let (version, state) = replica.read(&sim).expect("still available");
        assert_eq!(version, 1);
        assert_eq!(&state[..], b"v1");
    }

    #[test]
    fn recovering_replica_catches_up_before_serving() {
        let mut sim = Sim::new(13);
        let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
        let replica = ReplicatedObject::create(&mut sim, o(), &nodes, b"init");
        // Crash node 2, write while it is down, then recover it.
        sim.schedule_crash(nodes[2], 0);
        sim.run_to_quiescence();
        replica.write(&mut sim, b"missed");
        sim.run_to_quiescence();
        sim.schedule_recover(nodes[2], 0);
        sim.run_to_quiescence();
        // The recovered node converged to the latest version.
        let versions = replica.versions(&sim);
        assert!(versions.iter().all(|&(_, v)| v == 1), "{versions:?}");
        assert!(!sim.node(nodes[2]).stale.contains(&o()));
        assert_eq!(&replica.read(&sim).unwrap().1[..], b"missed");
    }

    #[test]
    fn unavailable_when_all_members_down() {
        let mut sim = Sim::new(14);
        let nodes = vec![sim.add_node(), sim.add_node()];
        let replica = ReplicatedObject::create(&mut sim, o(), &nodes, b"init");
        sim.schedule_crash(nodes[0], 0);
        sim.schedule_crash(nodes[1], 0);
        sim.run_to_quiescence();
        assert!(replica.read(&sim).is_none());
        assert!(replica.write(&mut sim, b"x").is_none());
    }

    #[test]
    fn writes_continue_during_member_downtime() {
        let mut sim = Sim::new(15);
        let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
        let replica = ReplicatedObject::create(&mut sim, o(), &nodes, b"init");
        replica.crash_member(&mut sim, nodes[1], 500_000);
        sim.run(10); // process the crash
        replica.write(&mut sim, b"while-down");
        sim.run_to_quiescence(); // includes the recovery + catch-up
        let versions = replica.versions(&sim);
        assert_eq!(versions.len(), 3);
        assert!(versions.iter().all(|&(_, v)| v == 1), "{versions:?}");
    }
}
