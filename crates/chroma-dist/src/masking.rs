//! The masking layer's pure machinery: per-peer sequence windows.
//!
//! The paper's §2 communication subsystem masks lost and duplicated
//! messages so the protocols above see at-most-once delivery per frame.
//! [`TcpTransport`](crate::TcpTransport) implements that with three
//! small, independently testable pieces:
//!
//! * [`SendWindow`] — the sender's resend buffer: frames keep their
//!   sequence number until cumulatively acknowledged, and a reconnect
//!   rewinds to the last ack so everything in flight is retransmitted;
//! * [`DedupWindow`] — the receiver's duplicate filter: frames at or
//!   below the high-water mark are suppressed, and a hole in the
//!   sequence stream is *surfaced* as [`Accept::Gap`], never silently
//!   skipped;
//! * [`Backoff`] — exponential reconnect pacing.
//!
//! All three are deterministic and socket-free, so the protocol-level
//! guarantees have unit tests that need no network at all.

use std::collections::VecDeque;

/// The sender's half of the masking layer: a bounded resend buffer of
/// sequence-numbered frames for one peer.
///
/// Frames stay buffered until the peer cumulatively acknowledges them;
/// `sent` tracks how far the current connection has written, so a
/// reconnect ([`SendWindow::rewind_sent`]) retransmits exactly the
/// unacknowledged suffix.
#[derive(Debug)]
pub struct SendWindow {
    next_seq: u64,
    /// Highest cumulatively acknowledged sequence number.
    acked: u64,
    /// Highest sequence number written to the current connection.
    sent: u64,
    /// Unacknowledged frames, oldest first: `(seq, encoded frame)`.
    unacked: VecDeque<(u64, Vec<u8>)>,
    capacity: usize,
    trimmed: u64,
}

impl SendWindow {
    /// Creates a window retaining at most `capacity` unacknowledged
    /// frames. When the buffer overflows, the oldest frame is dropped
    /// and counted in [`SendWindow::trimmed`] — the receiver will see
    /// that hole as a gap, by design.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SendWindow {
            next_seq: 1,
            acked: 0,
            sent: 0,
            unacked: VecDeque::new(),
            capacity: capacity.max(1),
            trimmed: 0,
        }
    }

    /// Buffers `frame`, assigning and returning its sequence number.
    pub fn push(&mut self, frame: Vec<u8>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.push_back((seq, frame));
        if self.unacked.len() > self.capacity {
            self.unacked.pop_front();
            self.trimmed += 1;
        }
        seq
    }

    /// Applies a cumulative acknowledgement: every frame with sequence
    /// number `<= upto` is released.
    pub fn ack(&mut self, upto: u64) {
        if upto > self.acked {
            self.acked = upto;
        }
        while self.unacked.front().is_some_and(|(seq, _)| *seq <= upto) {
            self.unacked.pop_front();
        }
    }

    /// Frames buffered but not yet written to the current connection,
    /// oldest first.
    pub fn unsent(&self) -> impl Iterator<Item = (u64, &[u8])> {
        let sent = self.sent;
        self.unacked
            .iter()
            .filter(move |(seq, _)| *seq > sent)
            .map(|(seq, frame)| (*seq, frame.as_slice()))
    }

    /// Records that every frame up to `seq` has been written to the
    /// current connection.
    pub fn mark_sent(&mut self, seq: u64) {
        if seq > self.sent {
            self.sent = seq;
        }
    }

    /// A new connection replaced the old one: everything past the last
    /// cumulative ack must be retransmitted.
    pub fn rewind_sent(&mut self) {
        self.sent = self.acked;
    }

    /// Highest cumulatively acknowledged sequence number.
    #[must_use]
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Number of frames currently awaiting acknowledgement.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Frames dropped from the buffer because it overflowed; each one
    /// will surface as a receiver-side gap.
    #[must_use]
    pub fn trimmed(&self) -> u64 {
        self.trimmed
    }
}

/// The receiver's verdict on one inbound sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accept {
    /// First sight: deliver the frame.
    Fresh,
    /// Already delivered (a retransmission or network duplicate): drop.
    Duplicate,
    /// The stream jumped: frames `expected..got` were never received
    /// and — because the sender advanced past them — never will be.
    /// The frame itself is still delivered; the hole is reported.
    Gap {
        /// The sequence number the window expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
}

/// The receiver's half of the masking layer: a cumulative high-water
/// mark per (peer, incarnation).
///
/// The window is *adopt-first*: a fresh window anchors on whatever
/// sequence number arrives first, which is how a restarted receiver
/// rejoins a sender mid-stream without flagging the missed prefix.
#[derive(Clone, Copy, Debug, Default)]
pub struct DedupWindow {
    high: Option<u64>,
}

impl DedupWindow {
    /// Creates an unanchored window.
    #[must_use]
    pub fn new() -> Self {
        DedupWindow::default()
    }

    /// Classifies sequence number `seq` and advances the high-water
    /// mark past it.
    pub fn accept(&mut self, seq: u64) -> Accept {
        let verdict = match self.high {
            None => Accept::Fresh,
            Some(high) if seq <= high => return Accept::Duplicate,
            Some(high) if seq == high + 1 => Accept::Fresh,
            Some(high) => Accept::Gap {
                expected: high + 1,
                got: seq,
            },
        };
        self.high = Some(seq);
        verdict
    }

    /// The highest sequence number accepted so far (for cumulative
    /// acks); `None` until the window anchors.
    #[must_use]
    pub fn high(&self) -> Option<u64> {
        self.high
    }
}

/// Exponential backoff for reconnect attempts: delays double from
/// `base` up to `max`, and a successful connection resets the run.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    base_us: u64,
    max_us: u64,
    cur_us: u64,
}

impl Backoff {
    /// Creates a backoff ranging from `base_us` to `max_us`.
    #[must_use]
    pub fn new(base_us: u64, max_us: u64) -> Self {
        let base_us = base_us.max(1);
        Backoff {
            base_us,
            max_us: max_us.max(base_us),
            cur_us: base_us,
        }
    }

    /// Returns the delay to wait before the next attempt and doubles
    /// the subsequent one (capped at the maximum).
    pub fn next_delay_us(&mut self) -> u64 {
        let delay = self.cur_us;
        self.cur_us = (self.cur_us.saturating_mul(2)).min(self.max_us);
        delay
    }

    /// An attempt succeeded: the next failure starts over from `base`.
    pub fn reset(&mut self) {
        self.cur_us = self.base_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_window_assigns_monotonic_seqs_and_acks_cumulatively() {
        let mut w = SendWindow::new(8);
        assert_eq!(w.push(vec![1]), 1);
        assert_eq!(w.push(vec![2]), 2);
        assert_eq!(w.push(vec![3]), 3);
        assert_eq!(w.in_flight(), 3);
        w.ack(2);
        assert_eq!(w.acked(), 2);
        assert_eq!(w.in_flight(), 1);
        // stale (lower) acks are idempotent
        w.ack(1);
        assert_eq!(w.acked(), 2);
        assert_eq!(w.in_flight(), 1);
    }

    #[test]
    fn send_window_resends_unacked_suffix_after_rewind() {
        let mut w = SendWindow::new(8);
        for v in 1..=4u8 {
            let seq = w.push(vec![v]);
            w.mark_sent(seq);
        }
        w.ack(2);
        // nothing unsent on the live connection
        assert_eq!(w.unsent().count(), 0);
        // connection died: everything past the ack goes again
        w.rewind_sent();
        let resend: Vec<u64> = w.unsent().map(|(seq, _)| seq).collect();
        assert_eq!(resend, vec![3, 4]);
    }

    #[test]
    fn send_window_overflow_trims_oldest_and_counts() {
        let mut w = SendWindow::new(2);
        w.push(vec![1]);
        w.push(vec![2]);
        w.push(vec![3]);
        assert_eq!(w.trimmed(), 1);
        assert_eq!(w.in_flight(), 2);
        let held: Vec<u64> = w.unsent().map(|(seq, _)| seq).collect();
        assert_eq!(held, vec![2, 3], "seq 1 was sacrificed");
    }

    #[test]
    fn dedup_window_adopts_then_filters() {
        let mut w = DedupWindow::new();
        // adopt-first: a restarted receiver anchors mid-stream
        assert_eq!(w.accept(7), Accept::Fresh);
        assert_eq!(w.accept(8), Accept::Fresh);
        assert_eq!(w.accept(8), Accept::Duplicate);
        assert_eq!(w.accept(3), Accept::Duplicate);
        assert_eq!(w.high(), Some(8));
    }

    #[test]
    fn dedup_window_surfaces_gaps_not_skips() {
        let mut w = DedupWindow::new();
        assert_eq!(w.accept(1), Accept::Fresh);
        assert_eq!(
            w.accept(4),
            Accept::Gap {
                expected: 2,
                got: 4
            },
            "a hole must be reported, never silently absorbed"
        );
        // the window advanced past the hole: the stream continues
        assert_eq!(w.accept(5), Accept::Fresh);
        // late arrivals from inside the hole are duplicates, not fresh
        assert_eq!(w.accept(3), Accept::Duplicate);
    }

    #[test]
    fn backoff_doubles_to_cap_and_resets() {
        let mut b = Backoff::new(10, 50);
        assert_eq!(b.next_delay_us(), 10);
        assert_eq!(b.next_delay_us(), 20);
        assert_eq!(b.next_delay_us(), 40);
        assert_eq!(b.next_delay_us(), 50);
        assert_eq!(b.next_delay_us(), 50);
        b.reset();
        assert_eq!(b.next_delay_us(), 10);
    }
}
