//! Versioned wire format for [`Message`] — the one codec shared by the
//! deterministic simulator and the TCP transport.
//!
//! Every encoded message starts with a 4-byte magic (`CHMS`) and a
//! version byte, so a process talking to a peer from a different build
//! fails loudly instead of misparsing. The body is a 1-byte variant tag
//! followed by fixed-width little-endian fields; variable-length byte
//! strings carry a `u32` length prefix. The format is deliberately
//! dependency-free (the payload type [`StoreBytes`] has no serde
//! support in this build), hand-rolled in the same spirit as
//! `chroma_store::codec`.
//!
//! [`TpcRecord`] gets the same treatment (magic `CHTL`) so a real
//! process can mirror its durable protocol log into a
//! [`DiskStore`](chroma_store::DiskStore) and recover it after
//! `kill -9`.

use chroma_base::{NodeId, ObjectId};
use chroma_store::StoreBytes;

use crate::msg::{Message, TxnId, Write};
use crate::node::TpcRecord;

/// Magic prefix of every encoded [`Message`].
pub const WIRE_MAGIC: [u8; 4] = *b"CHMS";
/// Magic prefix of an encoded [`TpcRecord`] log.
pub const LOG_MAGIC: [u8; 4] = *b"CHTL";
/// Current wire-format version (bumped on any layout change).
pub const WIRE_VERSION: u8 = 1;

/// Why a buffer failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer does not start with the expected magic.
    BadMagic,
    /// The version byte is one this build does not speak.
    BadVersion(u8),
    /// The buffer ended before the message did.
    Truncated,
    /// An unknown variant tag.
    UnknownTag(u8),
    /// Bytes left over after a complete message.
    Trailing,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => f.write_str("bad wire magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => f.write_str("truncated wire message"),
            WireError::UnknownTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::Trailing => f.write_str("trailing bytes after wire message"),
        }
    }
}

impl std::error::Error for WireError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId::from_raw(self.u32()?))
    }

    fn bytes(&mut self) -> Result<StoreBytes, WireError> {
        let len = self.u32()? as usize;
        Ok(StoreBytes::from(self.take(len)?.to_vec()))
    }

    fn writes(&mut self) -> Result<Vec<Write>, WireError> {
        let count = self.u32()? as usize;
        let mut writes = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let object = ObjectId::from_raw(self.u64()?);
            let state = self.bytes()?;
            writes.push(Write { object, state });
        }
        Ok(writes)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(
        &u32::try_from(bytes.len())
            .expect("payload fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(bytes);
}

fn put_writes(out: &mut Vec<u8>, writes: &[Write]) {
    out.extend_from_slice(
        &u32::try_from(writes.len())
            .expect("write count fits u32")
            .to_le_bytes(),
    );
    for w in writes {
        out.extend_from_slice(&w.object.as_raw().to_le_bytes());
        put_bytes(out, &w.state);
    }
}

/// Encodes a message into its versioned wire form.
#[must_use]
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    match msg {
        Message::Prepare {
            txn,
            writes,
            coordinator,
        } => {
            out.push(0);
            out.extend_from_slice(&txn.0.to_le_bytes());
            out.extend_from_slice(&coordinator.as_raw().to_le_bytes());
            put_writes(&mut out, writes);
        }
        Message::VoteYes { txn } => {
            out.push(1);
            out.extend_from_slice(&txn.0.to_le_bytes());
        }
        Message::VoteNo { txn } => {
            out.push(2);
            out.extend_from_slice(&txn.0.to_le_bytes());
        }
        Message::Decision { txn, commit } => {
            out.push(3);
            out.extend_from_slice(&txn.0.to_le_bytes());
            out.push(u8::from(*commit));
        }
        Message::Ack { txn } => {
            out.push(4);
            out.extend_from_slice(&txn.0.to_le_bytes());
        }
        Message::DecisionQuery { txn } => {
            out.push(5);
            out.extend_from_slice(&txn.0.to_le_bytes());
        }
        Message::RpcRequest { call, body } => {
            out.push(6);
            out.extend_from_slice(&call.to_le_bytes());
            put_bytes(&mut out, body);
        }
        Message::RpcReply { call, body } => {
            out.push(7);
            out.extend_from_slice(&call.to_le_bytes());
            put_bytes(&mut out, body);
        }
        Message::ReplicaState {
            object,
            version,
            state,
            holder_stale,
        } => {
            out.push(8);
            out.extend_from_slice(&object.as_raw().to_le_bytes());
            out.extend_from_slice(&version.to_le_bytes());
            put_bytes(&mut out, state);
            out.push(u8::from(*holder_stale));
        }
        Message::ReplicaNone { object } => {
            out.push(9);
            out.extend_from_slice(&object.as_raw().to_le_bytes());
        }
        Message::ReplicaPull { object } => {
            out.push(10);
            out.extend_from_slice(&object.as_raw().to_le_bytes());
        }
    }
    out
}

/// Decodes a versioned wire message.
///
/// # Errors
///
/// [`WireError`] on bad magic, unsupported version, truncation, unknown
/// tags, or trailing garbage.
pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(buf);
    if r.take(4)? != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let tag = r.u8()?;
    let msg = match tag {
        0 => {
            let txn = TxnId(r.u64()?);
            let coordinator = r.node()?;
            let writes = r.writes()?;
            Message::Prepare {
                txn,
                writes,
                coordinator,
            }
        }
        1 => Message::VoteYes {
            txn: TxnId(r.u64()?),
        },
        2 => Message::VoteNo {
            txn: TxnId(r.u64()?),
        },
        3 => Message::Decision {
            txn: TxnId(r.u64()?),
            commit: r.bool()?,
        },
        4 => Message::Ack {
            txn: TxnId(r.u64()?),
        },
        5 => Message::DecisionQuery {
            txn: TxnId(r.u64()?),
        },
        6 => Message::RpcRequest {
            call: r.u64()?,
            body: r.bytes()?,
        },
        7 => Message::RpcReply {
            call: r.u64()?,
            body: r.bytes()?,
        },
        8 => Message::ReplicaState {
            object: ObjectId::from_raw(r.u64()?),
            version: r.u64()?,
            state: r.bytes()?,
            holder_stale: r.bool()?,
        },
        9 => Message::ReplicaNone {
            object: ObjectId::from_raw(r.u64()?),
        },
        10 => Message::ReplicaPull {
            object: ObjectId::from_raw(r.u64()?),
        },
        other => return Err(WireError::UnknownTag(other)),
    };
    r.done()?;
    Ok(msg)
}

/// Encodes a durable 2PC log as one versioned blob.
#[must_use]
pub fn encode_records(records: &[TpcRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + records.len() * 16);
    out.extend_from_slice(&LOG_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(
        &u32::try_from(records.len())
            .expect("record count fits u32")
            .to_le_bytes(),
    );
    for record in records {
        match record {
            TpcRecord::CoordCommit { txn, participants } => {
                out.push(0);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(
                    &u32::try_from(participants.len())
                        .expect("participant count fits u32")
                        .to_le_bytes(),
                );
                for p in participants {
                    out.extend_from_slice(&p.as_raw().to_le_bytes());
                }
            }
            TpcRecord::CoordEnd { txn } => {
                out.push(1);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
            TpcRecord::Prepared {
                txn,
                coordinator,
                writes,
            } => {
                out.push(2);
                out.extend_from_slice(&txn.0.to_le_bytes());
                out.extend_from_slice(&coordinator.as_raw().to_le_bytes());
                put_writes(&mut out, writes);
            }
            TpcRecord::ParticipantDone { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.0.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes a durable 2PC log blob.
///
/// # Errors
///
/// [`WireError`] on bad magic, unsupported version, truncation, unknown
/// tags, or trailing garbage.
pub fn decode_records(buf: &[u8]) -> Result<Vec<TpcRecord>, WireError> {
    let mut r = Reader::new(buf);
    if r.take(4)? != LOG_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let count = r.u32()? as usize;
    let mut records = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let record = match r.u8()? {
            0 => {
                let txn = TxnId(r.u64()?);
                let n = r.u32()? as usize;
                let mut participants = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    participants.push(r.node()?);
                }
                TpcRecord::CoordCommit { txn, participants }
            }
            1 => TpcRecord::CoordEnd {
                txn: TxnId(r.u64()?),
            },
            2 => {
                let txn = TxnId(r.u64()?);
                let coordinator = r.node()?;
                let writes = r.writes()?;
                TpcRecord::Prepared {
                    txn,
                    coordinator,
                    writes,
                }
            }
            3 => TpcRecord::ParticipantDone {
                txn: TxnId(r.u64()?),
            },
            other => return Err(WireError::UnknownTag(other)),
        };
        records.push(record);
    }
    r.done()?;
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&Message::VoteYes { txn: TxnId(1) });
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&Message::VoteYes { txn: TxnId(1) });
        bytes[4] = WIRE_VERSION + 1;
        assert_eq!(decode(&bytes), Err(WireError::BadVersion(WIRE_VERSION + 1)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode(&Message::Decision {
            txn: TxnId(7),
            commit: true,
        });
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&Message::Ack { txn: TxnId(3) });
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(WireError::Trailing));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = encode(&Message::Ack { txn: TxnId(3) });
        bytes[5] = 200;
        assert_eq!(decode(&bytes), Err(WireError::UnknownTag(200)));
    }

    #[test]
    fn tpc_log_round_trips() {
        let records = vec![
            TpcRecord::Prepared {
                txn: TxnId(4),
                coordinator: NodeId::from_raw(1),
                writes: vec![Write {
                    object: ObjectId::from_raw(9),
                    state: StoreBytes::from(vec![1, 2, 3]),
                }],
            },
            TpcRecord::CoordCommit {
                txn: TxnId(4),
                participants: vec![NodeId::from_raw(2), NodeId::from_raw(3)],
            },
            TpcRecord::ParticipantDone { txn: TxnId(4) },
            TpcRecord::CoordEnd { txn: TxnId(4) },
        ];
        let blob = encode_records(&records);
        assert_eq!(decode_records(&blob).unwrap(), records);
        assert_eq!(decode_records(&blob[..3]), Err(WireError::Truncated));
    }

    #[test]
    fn error_display() {
        assert!(WireError::BadVersion(9).to_string().contains('9'));
        assert!(WireError::UnknownTag(7).to_string().contains('7'));
    }
}
