//! A fail-silent node: stable + volatile halves, two-phase-commit state
//! machines, at-most-once RPC server, replica state.

use std::collections::{HashMap, HashSet};

use chroma_base::{NodeId, ObjectId};
use chroma_obs::{EventKind, Obs, ObsCell, Observable};
use chroma_store::{codec, DurableLog, StableStore, StoreBytes};
use serde::{Deserialize, Serialize};

use crate::msg::{Effect, Message, TimerTag, TxnId, Write};

/// How often (simulated µs) protocol timers re-fire.
pub const RETRY_INTERVAL: u64 = 50_000;
/// Prepare attempts before a coordinator unilaterally aborts.
pub const MAX_PREPARE_ATTEMPTS: u32 = 5;
/// Decision retransmissions before the coordinator stops pushing (the
/// durable commit record still answers queries afterwards).
pub const MAX_DECISION_ATTEMPTS: u32 = 50;

/// Durable records for the presumed-abort two-phase commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TpcRecord {
    /// Coordinator decided commit (the commit point).
    CoordCommit {
        /// The transaction.
        txn: TxnId,
        /// The participants that must learn the decision.
        participants: Vec<NodeId>,
    },
    /// Every participant acknowledged; the record can be forgotten.
    CoordEnd {
        /// The transaction.
        txn: TxnId,
    },
    /// Participant prepared: it must find out the decision.
    Prepared {
        /// The transaction.
        txn: TxnId,
        /// Whom to ask.
        coordinator: NodeId,
        /// The writes to install on commit.
        writes: Vec<Write>,
    },
    /// Participant processed the decision; obligation resolved.
    ParticipantDone {
        /// The transaction.
        txn: TxnId,
    },
}

/// Volatile coordinator state for an in-flight transaction.
#[derive(Clone, Debug)]
struct CoordState {
    participants: Vec<NodeId>,
    writes: HashMap<NodeId, Vec<Write>>,
    votes: HashSet<NodeId>,
    decided: Option<bool>,
    acked: HashSet<NodeId>,
    prepare_attempts: u32,
    decision_attempts: u32,
    /// Simulated time the transaction began (for the decide latency
    /// histogram).
    begin_at_us: u64,
}

/// Volatile participant state.
#[derive(Clone, Debug)]
struct PartState {
    coordinator: NodeId,
    done: bool,
}

/// An operation of the built-in RPC key-value service (used to exercise
/// the at-most-once machinery).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpcOp {
    /// Store `state` under `object` (non-transactional direct write).
    Put(u64, Vec<u8>),
    /// Fetch the state under `object`.
    Get(u64),
    /// Liveness probe.
    Ping,
}

/// Reply of the built-in RPC service.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpcResult {
    /// Put installed.
    Done,
    /// Get result (`None` = no such object).
    Value(Option<Vec<u8>>),
    /// Pong.
    Pong,
}

/// Volatile client-side state of an outstanding RPC.
#[derive(Clone, Debug)]
struct RpcCall {
    to: NodeId,
    body: StoreBytes,
    reply: Option<StoreBytes>,
    attempts: u32,
}

/// A simulated fail-silent workstation.
///
/// Everything in the *stable* section survives [`Node::crash`];
/// everything volatile is lost, and [`Node::recover`] rebuilds
/// obligations from the durable logs — re-sending decisions for
/// committed-but-unacknowledged transactions and querying coordinators
/// for prepared-but-undecided ones.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    /// `false` while crashed: the simulation drops deliveries.
    pub up: bool,
    // ---- stable ----
    /// Installed object states (intentions-list commit inside).
    pub store: StableStore,
    tpc_log: DurableLog<TpcRecord>,
    // ---- volatile ----
    coord: HashMap<TxnId, CoordState>,
    part: HashMap<TxnId, PartState>,
    /// Transactions this node will refuse to prepare (fault injection).
    pub veto: HashSet<TxnId>,
    rpc_seen: HashMap<(NodeId, u64), StoreBytes>,
    rpc_calls: HashMap<u64, RpcCall>,
    next_call: u64,
    /// Replicated objects considered stale until a peer confirms.
    pub stale: HashSet<ObjectId>,
    /// Peers per replicated object (for pull-on-recover).
    pub replica_peers: HashMap<ObjectId, Vec<NodeId>>,
    /// Peers whose pull response is still outstanding, per object
    /// (volatile; populated on recovery).
    pull_pending: HashMap<ObjectId, HashSet<NodeId>>,
    /// Observability handle (survives crashes: instrumentation is not
    /// part of the simulated machine).
    obs: ObsCell,
}

impl Node {
    /// Creates an up, empty node.
    #[must_use]
    pub fn new(id: NodeId) -> Self {
        Node {
            id,
            up: true,
            store: StableStore::new(),
            tpc_log: DurableLog::new(),
            coord: HashMap::new(),
            part: HashMap::new(),
            veto: HashSet::new(),
            rpc_seen: HashMap::new(),
            rpc_calls: HashMap::new(),
            next_call: 1,
            stale: HashSet::new(),
            replica_peers: HashMap::new(),
            pull_pending: HashMap::new(),
            obs: ObsCell::new(),
        }
    }

    /// Starts building a node, mirroring `Runtime::builder()`: identity
    /// and observability can come from a [`Transport`], and durable
    /// state can be restored from a [`DiskStore`].
    ///
    /// [`Transport`]: crate::Transport
    #[must_use]
    pub fn builder() -> NodeBuilder<'static> {
        NodeBuilder::default()
    }

    /// The node's current observability handle (already bound to its
    /// identity).
    fn obs(&self) -> Obs {
        self.obs.get()
    }

    /// Returns the node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Returns this node's record of the decision for `txn`, if it was
    /// the coordinator: `Some(true)` commit, `Some(false)` abort,
    /// `None` undecided/unknown.
    #[must_use]
    pub fn coordinator_outcome(&self, txn: TxnId) -> Option<bool> {
        if let Some(state) = self.coord.get(&txn) {
            if let Some(decided) = state.decided {
                return Some(decided);
            }
        }
        // Fall back to the durable log (post-crash).
        let committed = self
            .tpc_log
            .entries()
            .iter()
            .any(|r| matches!(r, TpcRecord::CoordCommit { txn: t, .. } if *t == txn));
        if committed {
            Some(true)
        } else {
            None
        }
    }

    /// Returns `true` while this node, as coordinator, still holds
    /// volatile state for `txn` — the transaction is in flight (votes
    /// or acks outstanding). Process hosts poll this to know when a
    /// transaction no longer needs driving.
    #[must_use]
    pub fn coordinator_active(&self, txn: TxnId) -> bool {
        self.coord.contains_key(&txn)
    }

    /// Returns `true` if this node, as a participant, installed `txn`'s
    /// writes.
    #[must_use]
    pub fn installed(&self, txn: TxnId) -> bool {
        let mut prepared = false;
        let mut done = false;
        for record in self.tpc_log.entries() {
            match record {
                TpcRecord::Prepared { txn: t, .. } if t == txn => prepared = true,
                TpcRecord::ParticipantDone { txn: t } if t == txn => done = true,
                _ => {}
            }
        }
        // `Prepared` + `Done` means the decision was processed; whether
        // it installed depends on the decision — check the store via
        // the writes. Simplest reliable signal: done with commit means
        // the store contains the written states; tests check the store
        // directly. Here we report "obligation resolved".
        prepared && done
    }

    /// Returns `true` if the participant has a prepared-but-unresolved
    /// obligation for `txn`.
    #[must_use]
    pub fn in_doubt(&self, txn: TxnId) -> bool {
        let mut prepared = false;
        let mut done = false;
        for record in self.tpc_log.entries() {
            match record {
                TpcRecord::Prepared { txn: t, .. } if t == txn => prepared = true,
                TpcRecord::ParticipantDone { txn: t } if t == txn => done = true,
                _ => {}
            }
        }
        prepared && !done
    }

    // ------------------------------------------------------------------
    // Two-phase commit: coordinator
    // ------------------------------------------------------------------

    /// Starts a distributed transaction with this node as coordinator.
    ///
    /// `writes` maps each participant to the writes it must install; the
    /// coordinator itself may be a participant. Returns the effects to
    /// schedule.
    pub fn begin_transaction(
        &mut self,
        txn: TxnId,
        writes: HashMap<NodeId, Vec<Write>>,
    ) -> Vec<Effect> {
        let participants: Vec<NodeId> = writes.keys().copied().collect();
        let mut effects = Vec::new();
        for (&to, w) in &writes {
            effects.push(Effect::Send {
                to,
                msg: Message::Prepare {
                    txn,
                    writes: w.clone(),
                    coordinator: self.id,
                },
            });
        }
        effects.push(Effect::SetTimer {
            delay: RETRY_INTERVAL,
            tag: TimerTag::CoordinatorRetry(txn),
        });
        self.coord.insert(
            txn,
            CoordState {
                participants,
                writes,
                votes: HashSet::new(),
                decided: None,
                acked: HashSet::new(),
                prepare_attempts: 0,
                decision_attempts: 0,
                begin_at_us: self.obs().now_us(),
            },
        );
        effects
    }

    fn decide(&mut self, txn: TxnId, commit: bool) -> Vec<Effect> {
        let Some(state) = self.coord.get_mut(&txn) else {
            return Vec::new();
        };
        if state.decided.is_some() {
            return Vec::new();
        }
        state.decided = Some(commit);
        let participants = state.participants.len() as u64;
        let begun = state.begin_at_us;
        if commit {
            // The commit point: durable before any Decision leaves.
            self.tpc_log.append(TpcRecord::CoordCommit {
                txn,
                participants: state.participants.clone(),
            });
        }
        let mut effects: Vec<Effect> = state
            .participants
            .iter()
            .map(|&to| Effect::Send {
                to,
                msg: Message::Decision { txn, commit },
            })
            .collect();
        effects.push(Effect::SetTimer {
            delay: RETRY_INTERVAL,
            tag: TimerTag::DecisionRetry(txn),
        });
        self.obs().emit(EventKind::TpcDecide {
            node: self.id,
            txn: txn.0,
            commit,
            participants,
        });
        self.obs()
            .observe("dist.decide_us", self.obs().now_us().saturating_sub(begun));
        effects
    }

    fn on_vote(&mut self, from: NodeId, txn: TxnId, yes: bool) -> Vec<Effect> {
        let Some(state) = self.coord.get_mut(&txn) else {
            return Vec::new();
        };
        if state.decided.is_some() {
            return Vec::new();
        }
        if !yes {
            return self.decide(txn, false);
        }
        state.votes.insert(from);
        if state.votes.len() == state.participants.len() {
            return self.decide(txn, true);
        }
        Vec::new()
    }

    fn on_ack(&mut self, from: NodeId, txn: TxnId) -> Vec<Effect> {
        let finished = {
            let Some(state) = self.coord.get_mut(&txn) else {
                return Vec::new();
            };
            state.acked.insert(from);
            state.decided.is_some() && state.acked.len() == state.participants.len()
        };
        if finished {
            let state = self.coord.remove(&txn).expect("state present");
            if state.decided == Some(true) {
                self.tpc_log.append(TpcRecord::CoordEnd { txn });
            }
        }
        Vec::new()
    }

    fn on_decision_query(&mut self, from: NodeId, txn: TxnId) -> Vec<Effect> {
        // A live, undecided coordinator stays silent (the participant
        // will ask again); otherwise answer from volatile state or the
        // durable log — no record means presumed abort.
        if let Some(state) = self.coord.get(&txn) {
            match state.decided {
                None => return Vec::new(),
                Some(commit) => {
                    return vec![Effect::Send {
                        to: from,
                        msg: Message::Decision { txn, commit },
                    }]
                }
            }
        }
        let committed = self
            .tpc_log
            .entries()
            .iter()
            .any(|r| matches!(r, TpcRecord::CoordCommit { txn: t, .. } if *t == txn));
        vec![Effect::Send {
            to: from,
            msg: Message::Decision {
                txn,
                commit: committed,
            },
        }]
    }

    // ------------------------------------------------------------------
    // Two-phase commit: participant
    // ------------------------------------------------------------------

    fn on_prepare(&mut self, txn: TxnId, writes: Vec<Write>, coordinator: NodeId) -> Vec<Effect> {
        // Deduplicate: already done → ignore; already prepared →
        // re-vote.
        let mut prepared = false;
        let mut done = false;
        for record in self.tpc_log.entries() {
            match record {
                TpcRecord::Prepared { txn: t, .. } if t == txn => prepared = true,
                TpcRecord::ParticipantDone { txn: t } if t == txn => done = true,
                _ => {}
            }
        }
        if done {
            return Vec::new();
        }
        if prepared {
            self.obs().emit(EventKind::TpcVote {
                node: self.id,
                txn: txn.0,
                yes: true,
            });
            return vec![Effect::Send {
                to: coordinator,
                msg: Message::VoteYes { txn },
            }];
        }
        if self.veto.contains(&txn) {
            self.obs().emit(EventKind::TpcVote {
                node: self.id,
                txn: txn.0,
                yes: false,
            });
            return vec![Effect::Send {
                to: coordinator,
                msg: Message::VoteNo { txn },
            }];
        }
        self.tpc_log.append(TpcRecord::Prepared {
            txn,
            coordinator,
            writes,
        });
        self.obs().emit(EventKind::TpcPrepare {
            node: self.id,
            txn: txn.0,
        });
        self.obs().emit(EventKind::TpcVote {
            node: self.id,
            txn: txn.0,
            yes: true,
        });
        self.part.insert(
            txn,
            PartState {
                coordinator,
                done: false,
            },
        );
        vec![
            Effect::Send {
                to: coordinator,
                msg: Message::VoteYes { txn },
            },
            Effect::SetTimer {
                delay: 2 * RETRY_INTERVAL,
                tag: TimerTag::QueryDecision(txn),
            },
        ]
    }

    fn on_decision(&mut self, from: NodeId, txn: TxnId, commit: bool) -> Vec<Effect> {
        let mut prepared_writes: Option<Vec<Write>> = None;
        let mut done = false;
        for record in self.tpc_log.entries() {
            match record {
                TpcRecord::Prepared { txn: t, writes, .. } if t == txn => {
                    prepared_writes = Some(writes)
                }
                TpcRecord::ParticipantDone { txn: t } if t == txn => done = true,
                _ => {}
            }
        }
        if !done {
            self.obs().emit(EventKind::TpcResolve {
                node: self.id,
                txn: txn.0,
                commit,
            });
            if commit {
                if let Some(writes) = prepared_writes {
                    let mut updates: Vec<(ObjectId, StoreBytes)> = Vec::new();
                    let mut installed: Vec<(ObjectId, u64)> = Vec::new();
                    for w in writes {
                        if self.replica_peers.contains_key(&w.object) {
                            if let Ok((version, _)) = codec::from_bytes::<(u64, Vec<u8>)>(&w.state)
                            {
                                let local = self.read_versioned(w.object).map_or(0, |(v, _)| v);
                                if version < local {
                                    // A decision that resolved only after
                                    // this replica caught up past it:
                                    // installing would roll the copy back
                                    // (replica divergence).
                                    continue;
                                }
                                installed.push((w.object, version));
                            }
                        }
                        updates.push((w.object, w.state));
                    }
                    if !updates.is_empty() {
                        self.store.commit_batch(updates);
                    }
                    for (object, version) in installed {
                        self.obs().emit(EventKind::ReplicaInstall {
                            node: self.id,
                            object,
                            version,
                        });
                    }
                }
            }
            if let Some(state) = self.part.get_mut(&txn) {
                state.done = true;
            }
            self.tpc_log.append(TpcRecord::ParticipantDone { txn });
        }
        vec![Effect::Send {
            to: from,
            msg: Message::Ack { txn },
        }]
    }

    // ------------------------------------------------------------------
    // RPC
    // ------------------------------------------------------------------

    /// Starts an at-most-once RPC to `to`; returns the call id and the
    /// effects to schedule. Poll [`Node::rpc_reply`] for the result.
    pub fn rpc_call(&mut self, to: NodeId, op: &RpcOp) -> (u64, Vec<Effect>) {
        let call = self.next_call;
        self.next_call += 1;
        let body = StoreBytes::from(codec::to_bytes(op).expect("rpc op encodes"));
        self.rpc_calls.insert(
            call,
            RpcCall {
                to,
                body: body.clone(),
                reply: None,
                attempts: 0,
            },
        );
        (
            call,
            vec![
                Effect::Send {
                    to,
                    msg: Message::RpcRequest { call, body },
                },
                Effect::SetTimer {
                    delay: RETRY_INTERVAL,
                    tag: TimerTag::RpcRetry(call),
                },
            ],
        )
    }

    /// Returns the decoded reply for `call`, if it has arrived.
    #[must_use]
    pub fn rpc_reply(&self, call: u64) -> Option<RpcResult> {
        let reply = self.rpc_calls.get(&call)?.reply.as_ref()?;
        codec::from_bytes(reply).ok()
    }

    fn serve_rpc(&mut self, from: NodeId, call: u64, body: &StoreBytes) -> Vec<Effect> {
        if let Some(memo) = self.rpc_seen.get(&(from, call)) {
            // Duplicate request: replay the memoised reply, do not
            // re-execute (at-most-once).
            return vec![Effect::Send {
                to: from,
                msg: Message::RpcReply {
                    call,
                    body: memo.clone(),
                },
            }];
        }
        let result = match codec::from_bytes::<RpcOp>(body) {
            Ok(RpcOp::Put(raw, state)) => {
                self.store
                    .commit_batch(vec![(ObjectId::from_raw(raw), StoreBytes::from(state))]);
                RpcResult::Done
            }
            Ok(RpcOp::Get(raw)) => {
                RpcResult::Value(self.store.read(ObjectId::from_raw(raw)).map(|b| b.to_vec()))
            }
            Ok(RpcOp::Ping) | Err(_) => RpcResult::Pong,
        };
        let reply = StoreBytes::from(codec::to_bytes(&result).expect("rpc result encodes"));
        self.rpc_seen.insert((from, call), reply.clone());
        vec![Effect::Send {
            to: from,
            msg: Message::RpcReply { call, body: reply },
        }]
    }

    /// Returns how many distinct RPC requests this node has executed
    /// (duplicates excluded) — used to verify at-most-once execution.
    #[must_use]
    pub fn rpc_executed(&self) -> usize {
        self.rpc_seen.len()
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    fn on_replica_pull(&mut self, from: NodeId, object: ObjectId) -> Vec<Effect> {
        // Always answer: even a stale copy's version contributes to the
        // recovering peer's all-replicas maximum (stable storage
        // survives crashes, so the latest committed version exists at
        // some replica's store even if every replica crashed).
        match self.read_versioned(object) {
            Some((version, state)) => vec![Effect::Send {
                to: from,
                msg: Message::ReplicaState {
                    object,
                    version,
                    state,
                    holder_stale: self.stale.contains(&object),
                },
            }],
            None => vec![Effect::Send {
                to: from,
                msg: Message::ReplicaNone { object },
            }],
        }
    }

    fn on_replica_state(
        &mut self,
        from: NodeId,
        object: ObjectId,
        version: u64,
        state: StoreBytes,
        holder_stale: bool,
    ) -> Vec<Effect> {
        let local = self.read_versioned(object).map(|(v, _)| v).unwrap_or(0);
        if version > local {
            self.write_versioned(object, version, &state);
        }
        // A non-stale holder's copy is authoritative: adopt-and-trust.
        if !holder_stale {
            self.pull_pending.remove(&object);
            if self.stale.remove(&object) {
                self.emit_catchup_end(object);
            }
        } else {
            self.note_pull_response(from, object);
        }
        Vec::new()
    }

    fn on_replica_none(&mut self, from: NodeId, object: ObjectId) -> Vec<Effect> {
        self.note_pull_response(from, object);
        Vec::new()
    }

    /// Records that `from` answered our pull for `object`; once every
    /// peer has answered, the max version we have seen is the latest
    /// committed one (a committed write reached at least one replica's
    /// stable store) and the copy is fresh again.
    fn note_pull_response(&mut self, from: NodeId, object: ObjectId) {
        if let Some(pending) = self.pull_pending.get_mut(&object) {
            pending.remove(&from);
            if pending.is_empty() {
                self.pull_pending.remove(&object);
                if self.stale.remove(&object) {
                    self.emit_catchup_end(object);
                }
            }
        }
    }

    /// Closes this node's catch-up window for `object`, reporting the
    /// version it rejoined the group with.
    fn emit_catchup_end(&self, object: ObjectId) {
        let version = self.read_versioned(object).map_or(0, |(v, _)| v);
        self.obs().emit(EventKind::CatchupEnd {
            node: self.id,
            object,
            version,
        });
    }

    /// Reads a replicated object's `(version, state)` from the store.
    #[must_use]
    pub fn read_versioned(&self, object: ObjectId) -> Option<(u64, StoreBytes)> {
        let bytes = self.store.read(object)?;
        let (version, state): (u64, Vec<u8>) = codec::from_bytes(&bytes).ok()?;
        Some((version, StoreBytes::from(state)))
    }

    /// Writes a replicated object's `(version, state)` to the store.
    pub fn write_versioned(&mut self, object: ObjectId, version: u64, state: &[u8]) {
        let bytes = codec::to_bytes(&(version, state.to_vec())).expect("versioned encodes");
        self.store
            .commit_batch(vec![(object, StoreBytes::from(bytes))]);
        self.obs().emit(EventKind::ReplicaInstall {
            node: self.id,
            object,
            version,
        });
    }

    // ------------------------------------------------------------------
    // Event entry points (called by the simulation)
    // ------------------------------------------------------------------

    /// Handles a delivered message. Crashed nodes never get here.
    pub fn handle_message(&mut self, from: NodeId, msg: Message) -> Vec<Effect> {
        match msg {
            Message::Prepare {
                txn,
                writes,
                coordinator,
            } => self.on_prepare(txn, writes, coordinator),
            Message::VoteYes { txn } => self.on_vote(from, txn, true),
            Message::VoteNo { txn } => self.on_vote(from, txn, false),
            Message::Decision { txn, commit } => self.on_decision(from, txn, commit),
            Message::Ack { txn } => self.on_ack(from, txn),
            Message::DecisionQuery { txn } => self.on_decision_query(from, txn),
            Message::RpcRequest { call, body } => self.serve_rpc(from, call, &body),
            Message::RpcReply { call, body } => {
                if let Some(state) = self.rpc_calls.get_mut(&call) {
                    state.reply.get_or_insert(body);
                }
                Vec::new()
            }
            Message::ReplicaPull { object } => self.on_replica_pull(from, object),
            Message::ReplicaState {
                object,
                version,
                state,
                holder_stale,
            } => self.on_replica_state(from, object, version, state, holder_stale),
            Message::ReplicaNone { object } => self.on_replica_none(from, object),
        }
    }

    /// Handles a timer firing. Crashed nodes never get here.
    pub fn handle_timer(&mut self, tag: TimerTag) -> Vec<Effect> {
        match tag {
            TimerTag::CoordinatorRetry(txn) => {
                let Some(state) = self.coord.get_mut(&txn) else {
                    return Vec::new();
                };
                if state.decided.is_some() {
                    return Vec::new();
                }
                state.prepare_attempts += 1;
                if state.prepare_attempts >= MAX_PREPARE_ATTEMPTS {
                    return self.decide(txn, false);
                }
                let coordinator = self.id;
                let mut effects: Vec<Effect> = state
                    .participants
                    .iter()
                    .filter(|p| !state.votes.contains(p))
                    .map(|&to| Effect::Send {
                        to,
                        msg: Message::Prepare {
                            txn,
                            writes: state.writes.get(&to).cloned().unwrap_or_default(),
                            coordinator,
                        },
                    })
                    .collect();
                effects.push(Effect::SetTimer {
                    delay: RETRY_INTERVAL,
                    tag: TimerTag::CoordinatorRetry(txn),
                });
                effects
            }
            TimerTag::DecisionRetry(txn) => {
                let Some(state) = self.coord.get_mut(&txn) else {
                    return Vec::new();
                };
                let Some(commit) = state.decided else {
                    return Vec::new();
                };
                state.decision_attempts += 1;
                if state.decision_attempts >= MAX_DECISION_ATTEMPTS {
                    // Stop pushing; the durable record still answers
                    // queries. Drop volatile state for aborts.
                    if !commit {
                        self.coord.remove(&txn);
                    }
                    return Vec::new();
                }
                let mut effects: Vec<Effect> = state
                    .participants
                    .iter()
                    .filter(|p| !state.acked.contains(p))
                    .map(|&to| Effect::Send {
                        to,
                        msg: Message::Decision { txn, commit },
                    })
                    .collect();
                effects.push(Effect::SetTimer {
                    delay: RETRY_INTERVAL,
                    tag: TimerTag::DecisionRetry(txn),
                });
                effects
            }
            TimerTag::QueryDecision(txn) => {
                if !self.in_doubt(txn) {
                    return Vec::new();
                }
                let coordinator = self.part.get(&txn).map(|p| p.coordinator).or_else(|| {
                    self.tpc_log.entries().iter().find_map(|r| match r {
                        TpcRecord::Prepared {
                            txn: t,
                            coordinator,
                            ..
                        } if *t == txn => Some(*coordinator),
                        _ => None,
                    })
                });
                let Some(coordinator) = coordinator else {
                    return Vec::new();
                };
                vec![
                    Effect::Send {
                        to: coordinator,
                        msg: Message::DecisionQuery { txn },
                    },
                    Effect::SetTimer {
                        delay: 2 * RETRY_INTERVAL,
                        tag: TimerTag::QueryDecision(txn),
                    },
                ]
            }
            TimerTag::RpcRetry(call) => {
                let Some(state) = self.rpc_calls.get_mut(&call) else {
                    return Vec::new();
                };
                if state.reply.is_some() || state.attempts >= MAX_DECISION_ATTEMPTS {
                    return Vec::new();
                }
                state.attempts += 1;
                vec![
                    Effect::Send {
                        to: state.to,
                        msg: Message::RpcRequest {
                            call,
                            body: state.body.clone(),
                        },
                    },
                    Effect::SetTimer {
                        delay: RETRY_INTERVAL,
                        tag: TimerTag::RpcRetry(call),
                    },
                ]
            }
        }
    }

    /// Crashes the node: volatile state vanishes.
    pub fn crash(&mut self) {
        self.up = false;
        self.coord.clear();
        self.part.clear();
        self.rpc_seen.clear();
        self.rpc_calls.clear();
        self.pull_pending.clear();
        // Replicated copies may have missed writes while down — except
        // unreplicated objects (no peers), whose only copy is ours.
        let replicated: Vec<ObjectId> = self
            .replica_peers
            .iter()
            .filter(|(_, peers)| !peers.is_empty())
            .map(|(&o, _)| o)
            .collect();
        self.stale.extend(replicated);
    }

    /// Recovers the node: replays the stable store, rebuilds protocol
    /// obligations from the durable log, pulls replica state from
    /// peers. Returns the effects to schedule.
    pub fn recover(&mut self) -> Vec<Effect> {
        self.up = true;
        self.store.recover();
        let mut effects = Vec::new();

        // Coordinator obligations: committed but not ended → push the
        // decision again.
        let records = self.tpc_log.entries();
        let ended: HashSet<TxnId> = records
            .iter()
            .filter_map(|r| match r {
                TpcRecord::CoordEnd { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        for record in &records {
            if let TpcRecord::CoordCommit { txn, participants } = record {
                if !ended.contains(txn) {
                    self.coord.insert(
                        *txn,
                        CoordState {
                            participants: participants.clone(),
                            writes: HashMap::new(),
                            votes: HashSet::new(),
                            decided: Some(true),
                            acked: HashSet::new(),
                            prepare_attempts: 0,
                            decision_attempts: 0,
                            begin_at_us: self.obs().now_us(),
                        },
                    );
                    for &to in participants {
                        effects.push(Effect::Send {
                            to,
                            msg: Message::Decision {
                                txn: *txn,
                                commit: true,
                            },
                        });
                    }
                    effects.push(Effect::SetTimer {
                        delay: RETRY_INTERVAL,
                        tag: TimerTag::DecisionRetry(*txn),
                    });
                }
            }
        }

        // Participant obligations: prepared but not done → query.
        let done: HashSet<TxnId> = records
            .iter()
            .filter_map(|r| match r {
                TpcRecord::ParticipantDone { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        for record in &records {
            if let TpcRecord::Prepared {
                txn, coordinator, ..
            } = record
            {
                if !done.contains(txn) {
                    self.part.insert(
                        *txn,
                        PartState {
                            coordinator: *coordinator,
                            done: false,
                        },
                    );
                    effects.push(Effect::Send {
                        to: *coordinator,
                        msg: Message::DecisionQuery { txn: *txn },
                    });
                    effects.push(Effect::SetTimer {
                        delay: 2 * RETRY_INTERVAL,
                        tag: TimerTag::QueryDecision(*txn),
                    });
                }
            }
        }

        // Replicas: pull fresh state from peers, tracking whom we wait
        // for so staleness can end when every peer has answered.
        for (&object, peers) in &self.replica_peers {
            if peers.is_empty() {
                continue;
            }
            if self.stale.contains(&object) {
                self.obs().emit(EventKind::CatchupBegin {
                    node: self.id,
                    object,
                });
            }
            self.pull_pending
                .insert(object, peers.iter().copied().collect());
            for &peer in peers {
                effects.push(Effect::Send {
                    to: peer,
                    msg: Message::ReplicaPull { object },
                });
            }
        }
        effects
    }

    // ------------------------------------------------------------------
    // Durable mirroring (process deployments)
    // ------------------------------------------------------------------

    /// Mirrors the node's stable half — installed object states and the
    /// 2PC log — into `disk`, atomically. A `chroma-node` process calls
    /// this as its durability barrier: after a handler mutated stable
    /// state, before the resulting messages leave.
    ///
    /// # Errors
    ///
    /// [`DiskError`](chroma_store::DiskError) on filesystem failure.
    pub fn persist_durable(
        &self,
        disk: &chroma_store::DiskStore,
    ) -> Result<(), chroma_store::DiskError> {
        let mut updates: Vec<(ObjectId, StoreBytes)> = Vec::new();
        for object in self.store.object_ids() {
            if let Some(state) = self.store.read(object) {
                updates.push((object, state));
            }
        }
        let records = self.tpc_log.entries();
        updates.push((
            TPC_LOG_OBJECT,
            StoreBytes::from(crate::wire::encode_records(&records)),
        ));
        disk.commit_batch(updates)
    }

    /// Restores the stable half from a [`persist_durable`] mirror:
    /// object states re-enter the in-memory stable store, 2PC records
    /// re-enter the durable log. Ignores objects outside the mirror's
    /// namespace (e.g. ones a co-hosted `Runtime` allocated).
    ///
    /// [`persist_durable`]: Node::persist_durable
    ///
    /// # Errors
    ///
    /// [`DiskError`](chroma_store::DiskError) on filesystem failure or
    /// an unreadable log blob.
    pub fn restore_durable(
        &mut self,
        disk: &chroma_store::DiskStore,
    ) -> Result<(), chroma_store::DiskError> {
        let mut updates = Vec::new();
        for object in disk.object_ids()? {
            if object == TPC_LOG_OBJECT {
                if let Some(blob) = disk.read(object)? {
                    let records = crate::wire::decode_records(&blob).map_err(|e| {
                        chroma_store::DiskError::CorruptLog(format!("tpc log blob: {e}"))
                    })?;
                    for record in records {
                        self.tpc_log.append(record);
                    }
                }
            } else if (MIRROR_FLOOR..TPC_LOG_OBJECT.as_raw()).contains(&object.as_raw()) {
                if let Some(state) = disk.read(object)? {
                    updates.push((object, state));
                }
            }
        }
        if !updates.is_empty() {
            self.store.commit_batch(updates);
        }
        Ok(())
    }
}

/// Where [`Node::persist_durable`] keeps the encoded 2PC log inside a
/// shared [`DiskStore`](chroma_store::DiskStore) — far above any real
/// object id.
pub const TPC_LOG_OBJECT: ObjectId = ObjectId::from_raw(1 << 62);

/// Lowest object id [`Node::restore_durable`] treats as mirrored node
/// state; ids below belong to a co-hosted `Runtime`.
const MIRROR_FLOOR: u64 = 1_000;

impl Observable for Node {
    /// Installs an observability handle, forwarding it to the stable
    /// store and the commit log so WAL events flow through too.
    ///
    /// The handle is rebound to this node's identity first, so every
    /// event the node (or its store/log) emits carries a `node` field
    /// and ticks this node's Lamport clock.
    fn install_obs(&self, obs: Obs) {
        let obs = obs.at_node(self.id);
        self.store.install_obs(obs.clone());
        self.tpc_log.install_obs(obs.clone());
        self.obs.set(obs);
    }
}

/// Builds a [`Node`], mirroring `Runtime::builder()`.
///
/// # Examples
///
/// ```
/// use chroma_base::NodeId;
/// use chroma_dist::Node;
///
/// let node = Node::builder().id(NodeId::from_raw(3)).build().unwrap();
/// assert_eq!(node.id(), NodeId::from_raw(3));
/// ```
#[derive(Default)]
pub struct NodeBuilder<'a> {
    id: Option<NodeId>,
    obs: Option<Obs>,
    backend: Option<&'a chroma_store::DiskStore>,
}

impl<'a> NodeBuilder<'a> {
    /// Sets the node's identity.
    #[must_use]
    pub fn id(mut self, id: NodeId) -> Self {
        self.id = Some(id);
        self
    }

    /// Takes identity and observability from `transport` — the usual
    /// way a process host builds its node.
    #[must_use]
    pub fn transport(mut self, transport: &impl crate::Transport) -> Self {
        self.id = Some(transport.local());
        let obs = transport.obs();
        if obs.enabled() {
            self.obs = Some(obs);
        }
        self
    }

    /// Installs an observability handle on the built node.
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Restores the node's stable half from a [`Node::persist_durable`]
    /// mirror in `disk` at build time.
    #[must_use]
    pub fn backend(self, disk: &chroma_store::DiskStore) -> NodeBuilder<'_> {
        NodeBuilder {
            id: self.id,
            obs: self.obs,
            backend: Some(disk),
        }
    }

    /// Builds the node: restore durable state first (quietly), then
    /// install observability.
    ///
    /// # Errors
    ///
    /// [`DiskError`](chroma_store::DiskError) if restoring from the
    /// backend fails.
    ///
    /// # Panics
    ///
    /// Panics if no identity was provided via [`NodeBuilder::id`] or
    /// [`NodeBuilder::transport`].
    pub fn build(self) -> Result<Node, chroma_store::DiskError> {
        let id = self.id.expect("NodeBuilder requires an id or transport");
        let mut node = Node::new(id);
        if let Some(disk) = self.backend {
            node.restore_durable(disk)?;
        }
        if let Some(obs) = self.obs {
            node.install_obs(obs);
        }
        Ok(node)
    }
}
