//! Message and timer vocabulary for the simulated distributed system.

use chroma_base::{NodeId, ObjectId};
use chroma_obs::MsgKind;
use chroma_store::StoreBytes;

/// A correlation identifier pairing one logical network send with the
/// deliveries it produces.
///
/// The simulation allocates one per [`Effect::Send`] it executes and
/// stamps it on the `MsgSend` event plus every `MsgDeliver` / `MsgDup`
/// / `MsgDrop` that send gives rise to, so an offline analyzer can
/// reconstruct RPC pairs even when the network duplicates or loses
/// messages. Zero is never allocated; it is free for "no correlation"
/// sentinels in tests.
pub type CorrId = u64;

/// A transaction identifier, unique per simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One write a transaction wants installed at a particular node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Write {
    /// The object to update.
    pub object: ObjectId,
    /// The new state.
    pub state: StoreBytes,
}

/// Network message payloads.
///
/// The paper's model assumes the network may lose, duplicate or delay
/// messages; every protocol here is built to tolerate exactly that
/// (retransmission, deduplication, idempotent installation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    // ---- two-phase commit (presumed abort) ----
    /// Coordinator → participant: please prepare these writes.
    Prepare {
        /// The transaction.
        txn: TxnId,
        /// Writes destined for the receiving participant.
        writes: Vec<Write>,
        /// The coordinator to report back to.
        coordinator: NodeId,
    },
    /// Participant → coordinator: prepared and vote yes.
    VoteYes {
        /// The transaction.
        txn: TxnId,
    },
    /// Participant → coordinator: vote no (transaction must abort).
    VoteNo {
        /// The transaction.
        txn: TxnId,
    },
    /// Coordinator → participant: the decision.
    Decision {
        /// The transaction.
        txn: TxnId,
        /// `true` = commit, `false` = abort.
        commit: bool,
    },
    /// Participant → coordinator: decision processed.
    Ack {
        /// The transaction.
        txn: TxnId,
    },
    /// Recovering participant → coordinator: what was decided?
    DecisionQuery {
        /// The transaction.
        txn: TxnId,
    },

    // ---- at-most-once RPC ----
    /// Client → server: invoke.
    RpcRequest {
        /// Client-unique call id (for dedup and reply matching).
        call: u64,
        /// Operation payload (application defined).
        body: StoreBytes,
    },
    /// Server → client: reply.
    RpcReply {
        /// Echoed call id.
        call: u64,
        /// Result payload.
        body: StoreBytes,
    },

    // ---- replication (read-one / write-all-available) ----
    /// Peer → recovering replica: current state of a replicated object.
    ReplicaState {
        /// The replicated object.
        object: ObjectId,
        /// Version counter.
        version: u64,
        /// The state at that version.
        state: StoreBytes,
        /// `true` if the sender itself considers its copy stale (it is
        /// also recovering); such a response still counts towards the
        /// all-peers-heard quorum but does not by itself prove
        /// freshness.
        holder_stale: bool,
    },
    /// Peer → recovering replica: I hold no copy of this object.
    ReplicaNone {
        /// The replicated object.
        object: ObjectId,
    },
    /// Recovering replica → peer: send me your state for this object.
    ReplicaPull {
        /// The replicated object.
        object: ObjectId,
    },
}

impl Message {
    /// The payload-free message class, for observability events.
    #[must_use]
    pub fn kind(&self) -> MsgKind {
        match self {
            Message::Prepare { .. } => MsgKind::Prepare,
            Message::VoteYes { .. } => MsgKind::VoteYes,
            Message::VoteNo { .. } => MsgKind::VoteNo,
            Message::Decision { .. } => MsgKind::Decision,
            Message::Ack { .. } => MsgKind::Ack,
            Message::DecisionQuery { .. } => MsgKind::DecisionQuery,
            Message::RpcRequest { .. } => MsgKind::RpcRequest,
            Message::RpcReply { .. } => MsgKind::RpcReply,
            Message::ReplicaState { .. } => MsgKind::ReplicaState,
            Message::ReplicaNone { .. } => MsgKind::ReplicaNone,
            Message::ReplicaPull { .. } => MsgKind::ReplicaPull,
        }
    }
}

/// Timer tags: what a node asked to be woken up for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerTag {
    /// Coordinator: re-send prepares / give up and abort.
    CoordinatorRetry(TxnId),
    /// Coordinator: re-send the decision until all acks arrive.
    DecisionRetry(TxnId),
    /// Participant: prepared but no decision yet — query the
    /// coordinator.
    QueryDecision(TxnId),
    /// RPC client: retransmit an outstanding call.
    RpcRetry(u64),
}

/// An effect a node wants performed: the simulation schedules it.
#[derive(Clone, Debug)]
pub enum Effect {
    /// Send a message to a node.
    Send {
        /// Destination.
        to: NodeId,
        /// Payload.
        msg: Message,
    },
    /// Wake me with `tag` after `delay` simulated microseconds.
    SetTimer {
        /// Delay from now.
        delay: u64,
        /// The tag to deliver.
        tag: TimerTag,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_display() {
        assert_eq!(TxnId(3).to_string(), "T3");
    }

    #[test]
    fn messages_compare() {
        let a = Message::VoteYes { txn: TxnId(1) };
        let b = Message::VoteYes { txn: TxnId(1) };
        assert_eq!(a, b);
        assert_ne!(a, Message::VoteNo { txn: TxnId(1) });
    }
}
