//! Two-phase-commit atomicity under crash and message-failure
//! schedules (experiment A3): all participants reach the same outcome,
//! no participant stays in doubt forever, and committed writes survive.

use std::sync::Arc;

use chroma_base::{NodeId, ObjectId};
use chroma_dist::{RpcOp, Sim, Write, RETRY_INTERVAL};
use chroma_obs::{EventBus, MemorySink, Obs, Observable, TraceAuditor};
use chroma_store::StoreBytes;

fn w(object: u64, value: u8) -> Write {
    Write {
        object: ObjectId::from_raw(object),
        state: StoreBytes::from(vec![value]),
    }
}

fn installed(sim: &Sim, node: NodeId, object: u64, value: u8) -> bool {
    sim.node(node)
        .store
        .read(ObjectId::from_raw(object))
        .as_deref()
        == Some(&[value][..])
}

#[test]
fn participant_crash_between_prepare_and_decision_recovers_commit() {
    let mut sim = Sim::new(21);
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let p2 = sim.add_node();
    let txn = sim.begin_transaction(coord, vec![(p1, vec![w(1, 1)]), (p2, vec![w(2, 2)])]);
    // Let prepares and votes flow, then crash p2 before it can see the
    // decision.
    sim.run(8);
    sim.schedule_crash(p2, 0);
    sim.schedule_recover(p2, 20 * RETRY_INTERVAL);
    sim.run_to_quiescence();
    // Whatever was decided, both participants agree and nobody is in
    // doubt.
    assert!(!sim.node(p1).in_doubt(txn));
    assert!(!sim.node(p2).in_doubt(txn));
    let o1 = installed(&sim, p1, 1, 1);
    let o2 = installed(&sim, p2, 2, 2);
    assert_eq!(o1, o2, "participants disagree: p1={o1} p2={o2}");
    if sim.coordinator_outcome(coord, txn) == Some(true) {
        assert!(o1 && o2);
    }
}

#[test]
fn coordinator_crash_before_commit_point_presumes_abort() {
    let mut sim = Sim::new(22);
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let txn = sim.begin_transaction(coord, vec![(p1, vec![w(1, 9)])]);
    // Crash the coordinator immediately: the prepare may arrive, the
    // vote will, but no decision is ever logged.
    sim.schedule_crash(coord, 1);
    sim.schedule_recover(coord, 30 * RETRY_INTERVAL);
    sim.run_to_quiescence();
    // Presumed abort: the recovered coordinator answers the prepared
    // participant's query with abort.
    assert_eq!(sim.coordinator_outcome(coord, txn), None);
    assert!(!sim.node(p1).in_doubt(txn));
    assert!(!installed(&sim, p1, 1, 9));
}

#[test]
fn coordinator_crash_after_commit_point_pushes_decision_on_recovery() {
    let mut sim = Sim::new(23);
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let p2 = sim.add_node();
    let txn = sim.begin_transaction(coord, vec![(p1, vec![w(1, 1)]), (p2, vec![w(2, 2)])]);
    // Run until the commit record is durably logged (votes collected),
    // then crash before the decisions are all delivered.
    let mut steps = 0;
    while sim.coordinator_outcome(coord, txn).is_none() && sim.step() {
        steps += 1;
        assert!(steps < 1_000_000, "never decided");
    }
    sim.schedule_crash(coord, 0);
    sim.schedule_recover(coord, 50 * RETRY_INTERVAL);
    sim.run_to_quiescence();
    assert_eq!(sim.coordinator_outcome(coord, txn), Some(true));
    assert!(installed(&sim, p1, 1, 1));
    assert!(installed(&sim, p2, 2, 2));
    assert!(!sim.node(p1).in_doubt(txn));
    assert!(!sim.node(p2).in_doubt(txn));
}

#[test]
fn double_crash_coordinator_and_participant() {
    let mut sim = Sim::new(24);
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let txn = sim.begin_transaction(coord, vec![(p1, vec![w(5, 5)]), (coord, vec![w(6, 6)])]);
    sim.run(6);
    sim.schedule_crash(coord, 0);
    sim.schedule_crash(p1, RETRY_INTERVAL);
    sim.schedule_recover(coord, 40 * RETRY_INTERVAL);
    sim.schedule_recover(p1, 60 * RETRY_INTERVAL);
    sim.run_to_quiescence();
    assert!(!sim.node(p1).in_doubt(txn));
    assert!(!sim.node(coord).in_doubt(txn));
    let c = installed(&sim, coord, 6, 6);
    let p = installed(&sim, p1, 5, 5);
    assert_eq!(c, p, "atomicity violated: coord={c} p1={p}");
}

#[test]
fn randomized_sweep_preserves_atomicity() {
    // 40 seeds × (loss, duplication, random crash schedules): the
    // paper-level invariant is that a transaction's writes are either
    // installed at every participant or at none, once everyone is back
    // up and quiescent.
    for seed in 0..40 {
        let mut sim = Sim::new(seed);
        sim.net.loss = 0.15;
        sim.net.duplication = 0.15;
        // Capture the full event stream so the trace auditor can check
        // the protocol invariants offline after the run.
        let bus = Arc::new(EventBus::new());
        let sink = Arc::new(MemorySink::new(200_000));
        bus.add_sink(sink.clone());
        sim.install_obs(Obs::new(bus));
        let coord = sim.add_node();
        let p1 = sim.add_node();
        let p2 = sim.add_node();
        let txn = sim.begin_transaction(
            coord,
            vec![
                (coord, vec![w(1, 11)]),
                (p1, vec![w(2, 22)]),
                (p2, vec![w(3, 33)]),
            ],
        );
        // Crash schedule derived from the seed.
        let victim = [coord, p1, p2][(seed % 3) as usize];
        let when = (seed % 7) * (RETRY_INTERVAL / 3);
        sim.schedule_crash(victim, when);
        sim.schedule_recover(victim, when + 25 * RETRY_INTERVAL);
        sim.run_to_quiescence();

        let installs = [
            installed(&sim, coord, 1, 11),
            installed(&sim, p1, 2, 22),
            installed(&sim, p2, 3, 33),
        ];
        assert!(
            installs.iter().all(|&i| i) || installs.iter().all(|&i| !i),
            "seed {seed}: partial install {installs:?} (outcome {:?})",
            sim.coordinator_outcome(coord, txn)
        );
        assert!(!sim.node(p1).in_doubt(txn), "seed {seed}: p1 in doubt");
        assert!(!sim.node(p2).in_doubt(txn), "seed {seed}: p2 in doubt");
        if sim.coordinator_outcome(coord, txn) == Some(true) {
            assert!(installs[0], "seed {seed}: committed but not installed");
        }

        // The trace itself must satisfy the paper's protocol rules: no
        // divergent decisions, no commit without a full yes-quorum.
        assert_eq!(sink.dropped(), 0, "seed {seed}: trace ring overflowed");
        let report = TraceAuditor::audit_events(&sink.events());
        assert!(
            report.is_clean(),
            "seed {seed}: trace audit failed:\n{report}"
        );
    }
}

#[test]
fn sequential_transactions_under_faults_all_settle() {
    let mut sim = Sim::new(77);
    sim.net.loss = 0.1;
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let mut txns = Vec::new();
    for i in 0..10u64 {
        let txn = sim.begin_transaction(coord, vec![(p1, vec![w(i, i as u8)])]);
        txns.push((txn, i));
        sim.run_to_quiescence();
    }
    for (txn, i) in txns {
        assert!(!sim.node(p1).in_doubt(txn));
        if sim.coordinator_outcome(coord, txn) == Some(true) {
            assert!(installed(&sim, p1, i, i as u8), "txn {txn} lost write {i}");
        }
    }
}

#[test]
fn rpc_is_at_most_once_across_heavy_faults() {
    for seed in 0..10 {
        let mut sim = Sim::new(1000 + seed);
        sim.net.loss = 0.4;
        sim.net.duplication = 0.4;
        let client = sim.add_node();
        let server = sim.add_node();
        let call = sim.rpc(client, server, &RpcOp::Put(1, vec![1]));
        sim.run_to_quiescence();
        if sim.node(client).rpc_reply(call).is_some() {
            assert_eq!(
                sim.node(server).rpc_executed(),
                1,
                "seed {seed}: executed more than once"
            );
        }
    }
}
