//! Property test: the versioned wire codec round-trips **every**
//! [`Message`] variant byte-exactly, and rejects corrupted envelopes.
//!
//! The TCP masking layer and the simulator share this codec, so a
//! mismatch here would mean "works in the simulator, corrupts on the
//! wire" — exactly the class of bug the shared-codec design exists to
//! make impossible.

use chroma_base::{NodeId, ObjectId};
use chroma_dist::wire::{self, WireError, WIRE_VERSION};
use chroma_dist::{Message, TpcRecord, TxnId, Write};
use chroma_store::StoreBytes;
use proptest::prelude::*;

/// Draws one message of the variant selected by `variant`, covering
/// the whole enum as `variant` sweeps 0..11.
fn message(variant: u8, a: u64, b: u64, bytes: Vec<u8>, flag: bool) -> Message {
    let txn = TxnId(a);
    let node = NodeId::from_raw(b as u32);
    let object = ObjectId::from_raw(a ^ b);
    let state = StoreBytes::from(bytes.clone());
    match variant % 11 {
        0 => Message::Prepare {
            txn,
            writes: vec![
                Write {
                    object,
                    state: state.clone(),
                },
                Write {
                    object: ObjectId::from_raw(b),
                    state: StoreBytes::from(vec![flag as u8]),
                },
            ],
            coordinator: node,
        },
        1 => Message::VoteYes { txn },
        2 => Message::VoteNo { txn },
        3 => Message::Decision { txn, commit: flag },
        4 => Message::Ack { txn },
        5 => Message::DecisionQuery { txn },
        6 => Message::RpcRequest {
            call: a,
            body: state,
        },
        7 => Message::RpcReply {
            call: a,
            body: state,
        },
        8 => Message::ReplicaState {
            object,
            version: b,
            state,
            holder_stale: flag,
        },
        9 => Message::ReplicaNone { object },
        _ => Message::ReplicaPull { object },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_variant_round_trips(
        variant in 0u8..11,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        bytes in prop::collection::vec(0u8..=255, 0..64),
        flag in 0u8..2,
    ) {
        let msg = message(variant, a, b, bytes, flag == 1);
        let encoded = wire::encode(&msg);
        let decoded = wire::decode(&encoded).expect("round trip");
        prop_assert_eq!(&decoded, &msg);
        // re-encoding is deterministic
        prop_assert_eq!(wire::encode(&decoded), encoded);
    }

    #[test]
    fn truncation_never_panics_and_never_misdecodes(
        variant in 0u8..11,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        bytes in prop::collection::vec(0u8..=255, 0..32),
        cut in 0usize..128,
    ) {
        let msg = message(variant, a, b, bytes, false);
        let encoded = wire::encode(&msg);
        let cut = cut.min(encoded.len().saturating_sub(1));
        // every strict prefix must be rejected, not misread
        prop_assert!(wire::decode(&encoded[..cut]).is_err());
    }

    #[test]
    fn tpc_records_round_trip(
        txn in 0u64..u64::MAX,
        peer in 0u32..64,
        bytes in prop::collection::vec(0u8..=255, 0..32),
    ) {
        let records = vec![
            TpcRecord::CoordCommit {
                txn: TxnId(txn),
                participants: vec![NodeId::from_raw(peer), NodeId::from_raw(peer + 1)],
            },
            TpcRecord::Prepared {
                txn: TxnId(txn ^ 1),
                coordinator: NodeId::from_raw(peer),
                writes: vec![Write {
                    object: ObjectId::from_raw(txn),
                    state: StoreBytes::from(bytes),
                }],
            },
            TpcRecord::CoordEnd { txn: TxnId(txn) },
            TpcRecord::ParticipantDone { txn: TxnId(txn ^ 1) },
        ];
        let encoded = wire::encode_records(&records);
        let decoded = wire::decode_records(&encoded).expect("round trip");
        prop_assert_eq!(decoded, records);
    }
}

#[test]
fn version_and_magic_are_checked() {
    let msg = Message::Ack { txn: TxnId(7) };
    let good = wire::encode(&msg);

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(wire::decode(&bad_magic), Err(WireError::BadMagic)));

    let mut bad_version = good.clone();
    bad_version[4] = WIRE_VERSION + 1;
    assert!(matches!(
        wire::decode(&bad_version),
        Err(WireError::BadVersion(v)) if v == WIRE_VERSION + 1
    ));

    let mut trailing = good;
    trailing.push(0);
    assert!(matches!(wire::decode(&trailing), Err(WireError::Trailing)));
}
