//! Causal correlation under network faults: a seeded run with both
//! duplication and loss enabled must still let an offline analyzer pair
//! every *applied* receive with exactly one send via the correlation
//! id, and every delivery's merged Lamport clock must strictly exceed
//! its send's (audit rule R8).
//!
//! Unpaired sends are legal — the network is allowed to lose messages.
//! Unpaired receives are not: a delivery that no send explains means
//! the correlation plumbing is broken, and both this test and the R8
//! auditor treat it as a failure.

use std::collections::HashMap;
use std::sync::Arc;

use chroma_base::ObjectId;
use chroma_dist::{ReplicatedObject, Sim, Write};
use chroma_obs::{EventBus, EventKind, MemorySink, Obs, Observable, SpanForest, TraceAuditor};
use chroma_store::StoreBytes;

fn torture_seed() -> u64 {
    std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[test]
fn every_applied_receive_pairs_with_exactly_one_send() {
    let seed = torture_seed().wrapping_mul(7919).wrapping_add(23);
    let mut sim = Sim::new(seed);
    sim.net.loss = 0.15;
    sim.net.duplication = 0.25;

    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(500_000));
    bus.add_sink(sink.clone());
    sim.install_obs(Obs::new(bus.clone()));

    let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
    let replica = ReplicatedObject::create(&mut sim, ObjectId::from_raw(9), &nodes, b"v0");
    for round in 0..6u32 {
        let payload = format!("r{round}");
        replica.write(&mut sim, payload.as_bytes());
        sim.run_to_quiescence();
    }
    // A direct transaction too, so plain 2PC traffic (not just the
    // replication layer) crosses the lossy network.
    let txn = sim.begin_transaction(
        nodes[0],
        vec![(
            nodes[1],
            vec![Write {
                object: ObjectId::from_raw(10),
                state: StoreBytes::from(b"direct".to_vec()),
            }],
        )],
    );
    sim.run_to_quiescence();
    assert_eq!(sim.coordinator_outcome(nodes[0], txn), Some(true));

    let events = sink.events();
    assert_eq!(sink.dropped(), 0, "trace ring overflowed");

    // The schedule must actually have exercised the fault paths, or the
    // pairing claim below is vacuous.
    assert!(bus.counter("msg_dup") >= 1, "no duplication occurred");
    assert!(bus.counter("msg_drop") >= 1, "no loss occurred");

    // Pair receives with sends by correlation id, by hand — the claim
    // the SpanForest and auditor make, re-derived independently.
    let mut sends: HashMap<u64, (u64, usize)> = HashMap::new(); // corr -> (send lc, count)
    let mut receives = 0u64;
    for event in &events {
        match event.kind {
            EventKind::MsgSend { .. } => {
                let corr = event.corr.expect("every send carries a correlation id");
                let entry = sends.entry(corr).or_insert((event.lc, 0));
                entry.1 += 1;
                assert_eq!(entry.1, 1, "correlation id {corr} allocated to two sends");
            }
            EventKind::MsgDeliver { .. } => {
                receives += 1;
                let corr = event.corr.expect("every delivery carries a correlation id");
                let (send_lc, _) = *sends
                    .get(&corr)
                    .unwrap_or_else(|| panic!("delivery corr {corr} has no matching send"));
                assert!(
                    event.lc > send_lc,
                    "delivery lc {} does not exceed send lc {send_lc} (corr {corr})",
                    event.lc
                );
            }
            _ => {}
        }
    }
    assert!(receives > 0, "no deliveries at all");

    // The span forest reaches the same verdict: flows for every
    // delivery, lost sends unpaired, and zero orphan receives.
    let forest = SpanForest::build(&events);
    assert_eq!(forest.flows.len() as u64, receives);
    assert!(
        !forest.unpaired_sends.is_empty(),
        "with 15% loss some send should go undelivered"
    );
    assert!(
        forest.unpaired_receives.is_empty(),
        "orphan receives: {:?}",
        forest.unpaired_receives
    );

    // And the R8 auditor agrees the trace is causally clean.
    let report = TraceAuditor::audit_events(&events);
    assert!(report.is_clean(), "seed {seed} audit failed:\n{report}");
}

#[test]
fn orphan_receive_is_an_audit_failure() {
    // Synthesize a delivery whose correlation id no send ever used;
    // the auditor must flag it rather than silently pairing nothing.
    use chroma_base::NodeId;
    use chroma_obs::{Event, Violation};

    let mut deliver = Event::at(
        10,
        EventKind::MsgDeliver {
            from: NodeId::from_raw(1),
            to: NodeId::from_raw(2),
            kind: chroma_obs::MsgKind::Prepare,
        },
    );
    deliver.lc = 4;
    deliver.corr = Some(77);
    let report = TraceAuditor::audit_events(&[deliver]);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::ReceiveWithoutSend { corr: 77, .. })));
}
