//! Edge cases of the distributed protocols: duplicate messages, vetoes,
//! stale queries, RPC retransmission limits, network statistics.

use chroma_base::{NodeId, ObjectId};
use chroma_dist::{Message, RpcOp, RpcResult, Sim, TxnId, Write, RETRY_INTERVAL};
use chroma_store::StoreBytes;

fn w(object: u64, value: u8) -> Write {
    Write {
        object: ObjectId::from_raw(object),
        state: StoreBytes::from(vec![value]),
    }
}

#[test]
fn duplicate_prepare_is_idempotent() {
    let mut sim = Sim::new(41);
    sim.net.duplication = 1.0; // every message duplicated
    let coord = sim.add_node();
    let p = sim.add_node();
    let txn = sim.begin_transaction(coord, vec![(p, vec![w(1, 1)])]);
    sim.run_to_quiescence();
    assert_eq!(sim.coordinator_outcome(coord, txn), Some(true));
    assert_eq!(
        sim.node(p).store.read(ObjectId::from_raw(1)).as_deref(),
        Some(&[1u8][..])
    );
    assert!(!sim.node(p).in_doubt(txn));
    // Duplicates were actually generated.
    assert!(sim.net_stats().duplicated > 0);
}

#[test]
fn veto_from_one_participant_aborts_all() {
    let mut sim = Sim::new(42);
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let p2 = sim.add_node();
    sim.node_mut(p2).veto.insert(TxnId(1));
    let txn = sim.begin_transaction(coord, vec![(p1, vec![w(1, 1)]), (p2, vec![w(2, 2)])]);
    sim.run_to_quiescence();
    assert_eq!(sim.coordinator_outcome(coord, txn), None);
    // p1 prepared, then learned abort: obligation resolved, nothing
    // installed anywhere.
    assert!(!sim.node(p1).in_doubt(txn));
    assert!(sim.node(p1).store.read(ObjectId::from_raw(1)).is_none());
    assert!(sim.node(p2).store.read(ObjectId::from_raw(2)).is_none());
    // installed() reports obligation state, not commitment.
    assert!(sim.node(p1).installed(txn));
}

#[test]
fn decision_query_for_unknown_txn_presumes_abort() {
    let mut sim = Sim::new(43);
    let coord = sim.add_node();
    let p = sim.add_node();
    // Inject a stray query for a transaction the coordinator never saw.
    let effects = sim
        .node_mut(coord)
        .handle_message(p, Message::DecisionQuery { txn: TxnId(777) });
    // Presumed abort: the reply is Decision{commit: false}.
    assert_eq!(effects.len(), 1);
    match &effects[0] {
        chroma_dist::Effect::Send { to, msg } => {
            assert_eq!(*to, p);
            assert_eq!(
                *msg,
                Message::Decision {
                    txn: TxnId(777),
                    commit: false
                }
            );
        }
        other => panic!("unexpected effect {other:?}"),
    }
}

#[test]
fn rpc_get_and_ping_round_trips() {
    let mut sim = Sim::new(44);
    let client = sim.add_node();
    let server = sim.add_node();
    // Put then get.
    let put = sim.rpc(client, server, &RpcOp::Put(5, vec![7, 8]));
    sim.run_to_quiescence();
    assert_eq!(sim.node(client).rpc_reply(put), Some(RpcResult::Done));
    let get = sim.rpc(client, server, &RpcOp::Get(5));
    sim.run_to_quiescence();
    assert_eq!(
        sim.node(client).rpc_reply(get),
        Some(RpcResult::Value(Some(vec![7, 8])))
    );
    let missing = sim.rpc(client, server, &RpcOp::Get(99));
    sim.run_to_quiescence();
    assert_eq!(
        sim.node(client).rpc_reply(missing),
        Some(RpcResult::Value(None))
    );
    let ping = sim.rpc(client, server, &RpcOp::Ping);
    sim.run_to_quiescence();
    assert_eq!(sim.node(client).rpc_reply(ping), Some(RpcResult::Pong));
}

#[test]
fn rpc_to_permanently_dead_server_gives_up() {
    let mut sim = Sim::new(45);
    let client = sim.add_node();
    let server = sim.add_node();
    sim.schedule_crash(server, 0);
    let call = sim.rpc(client, server, &RpcOp::Ping);
    sim.run_to_quiescence(); // retransmissions exhaust, sim quiesces
    assert_eq!(sim.node(client).rpc_reply(call), None);
}

#[test]
fn crash_of_unknown_and_double_recover_are_harmless() {
    let mut sim = Sim::new(46);
    let n = sim.add_node();
    sim.schedule_recover(n, 0); // recover an up node: no-op
    sim.schedule_crash(n, 10);
    sim.schedule_crash(n, 20); // double crash
    sim.schedule_recover(n, 30);
    sim.schedule_recover(n, 40); // double recover
    sim.run_to_quiescence();
    assert!(sim.node(n).up);
}

#[test]
fn transactions_to_crashed_participant_abort_after_retries() {
    let mut sim = Sim::new(47);
    let coord = sim.add_node();
    let p = sim.add_node();
    sim.schedule_crash(p, 0);
    let txn = sim.begin_transaction(coord, vec![(p, vec![w(1, 1)])]);
    sim.run_to_quiescence();
    // The coordinator gave up: presumed abort.
    assert_eq!(sim.coordinator_outcome(coord, txn), None);
}

#[test]
fn net_stats_account_for_everything() {
    let mut sim = Sim::new(48);
    sim.net.loss = 0.3;
    let coord = sim.add_node();
    let p = sim.add_node();
    sim.begin_transaction(coord, vec![(p, vec![w(1, 1)])]);
    sim.run_to_quiescence();
    let stats = sim.net_stats();
    assert!(stats.sent > 0);
    assert_eq!(
        stats.sent + stats.duplicated,
        stats.delivered + stats.dropped,
        "conservation: {stats:?}"
    );
}

#[test]
fn virtual_time_advances_monotonically() {
    let mut sim = Sim::new(49);
    let coord = sim.add_node();
    let p = sim.add_node();
    let mut last = sim.now();
    sim.begin_transaction(coord, vec![(p, vec![w(1, 1)])]);
    while sim.step() {
        assert!(sim.now() >= last);
        last = sim.now();
    }
    assert!(last > 0);
}

#[test]
fn node_ids_are_stable_and_ordered() {
    let mut sim = Sim::new(50);
    let a = sim.add_node();
    let b = sim.add_node();
    assert_eq!(sim.node_ids(), vec![a, b]);
    assert_eq!(sim.node(a).id(), a);
    assert!(a < b);
    let _ = NodeId::from_raw(0);
}

#[test]
fn retry_interval_timers_do_not_livelock_idle_nodes() {
    // A node with no obligations schedules no timers: an idle sim
    // drains instantly.
    let mut sim = Sim::new(51);
    let _ = sim.add_node();
    assert_eq!(sim.run(1000), 0);
    let _ = RETRY_INTERVAL; // exported constant is part of the API
}

#[test]
fn trace_records_protocol_events() {
    let mut sim = Sim::new(52);
    sim.enable_trace();
    let coord = sim.add_node();
    let p = sim.add_node();
    sim.schedule_crash(p, 100_000);
    sim.schedule_recover(p, 400_000);
    sim.begin_transaction(coord, vec![(p, vec![w(1, 1)])]);
    sim.run_to_quiescence();
    let trace = sim.trace();
    assert!(!trace.is_empty());
    let text: Vec<String> = trace.iter().map(ToString::to_string).collect();
    let joined = text.join("\n");
    assert!(joined.contains("Prepare"), "no prepare in trace:\n{joined}");
    assert!(joined.contains("CRASH"));
    assert!(joined.contains("RECOVER"));
    // Timestamps are monotone.
    assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
}

#[test]
fn trace_is_empty_when_disabled() {
    let mut sim = Sim::new(53);
    let coord = sim.add_node();
    let p = sim.add_node();
    sim.begin_transaction(coord, vec![(p, vec![w(1, 1)])]);
    sim.run_to_quiescence();
    assert!(sim.trace().is_empty());
}
