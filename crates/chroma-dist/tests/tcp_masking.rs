//! Masking-layer tests over real loopback sockets: forced reconnects
//! must not duplicate deliveries, and resend-buffer overflow must be
//! surfaced as a gap — never silently skipped.
//!
//! Seeded via `CHROMA_TORTURE_SEED` (batch sizes vary), like the other
//! torture suites.

use std::sync::Arc;
use std::time::{Duration, Instant};

use chroma_base::NodeId;
use chroma_dist::{Message, TcpConfig, TcpTransport, Transport, TransportEvent};
use chroma_obs::{EventBus, EventKind, MemorySink, Obs, Observable};
use chroma_store::StoreBytes;

fn seed() -> u64 {
    std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

const DEADLINE: Duration = Duration::from_secs(10);

/// Builds a symmetric two-endpoint loopback pair sharing one bus.
fn pair(config_a: TcpConfig, config_b: TcpConfig) -> (TcpTransport, TcpTransport, Arc<MemorySink>) {
    let n1 = NodeId::from_raw(1);
    let n2 = NodeId::from_raw(2);
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(100_000));
    bus.add_sink(sink.clone());
    let mut a = TcpTransport::bind(n1, "127.0.0.1:0", config_a).expect("bind a");
    let mut b = TcpTransport::bind(n2, "127.0.0.1:0", config_b).expect("bind b");
    a.install_obs(Obs::new(bus.clone()));
    b.install_obs(Obs::new(bus));
    a.add_peer(n2, b.local_addr());
    b.add_peer(n1, a.local_addr());
    (a, b, sink)
}

/// Polls `t` briefly, appending everything it yields.
fn drain(t: &mut TcpTransport, into: &mut Vec<TransportEvent>) {
    while let Some(event) = t.poll(Some(Duration::from_millis(5))) {
        into.push(event);
    }
}

/// Polls both endpoints until `done` holds or the deadline passes.
fn pump_until(
    a: &mut TcpTransport,
    b: &mut TcpTransport,
    a_events: &mut Vec<TransportEvent>,
    b_events: &mut Vec<TransportEvent>,
    mut done: impl FnMut(&TcpTransport, &TcpTransport, &[TransportEvent]) -> bool,
) {
    let deadline = Instant::now() + DEADLINE;
    while !done(a, b, b_events) {
        assert!(Instant::now() < deadline, "masking test timed out");
        drain(a, a_events);
        drain(b, b_events);
    }
}

fn delivered_corrs(events: &[TransportEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            TransportEvent::Deliver { corr, .. } => Some(*corr),
            _ => None,
        })
        .collect()
}

/// A forced disconnect/reconnect retransmits everything unacked, and
/// the receiver's dedup window suppresses every retransmission: each
/// logical send is applied exactly once, provable corr-by-corr against
/// the trace.
#[test]
fn reconnect_resends_are_deduplicated() {
    let n1 = NodeId::from_raw(1);
    let n2 = NodeId::from_raw(2);
    let (mut a, mut b, sink) = pair(TcpConfig::default(), TcpConfig::default());
    let mut a_events = Vec::new();
    let mut b_events = Vec::new();

    // anchor: one send fully acknowledged, so the dedup window has
    // adopted this incarnation's stream
    a.send(
        n2,
        Message::RpcRequest {
            call: 0,
            body: StoreBytes::from(vec![0]),
        },
    );
    pump_until(&mut a, &mut b, &mut a_events, &mut b_events, |a, _, evs| {
        a.peer_acked(n2) >= 1 && delivered_corrs(evs).len() == 1
    });

    // sever the ack path (b's own outbound carries its acks), then send
    // a seeded batch: deliveries flow, acknowledgements cannot
    b.disconnect(n1);
    let batch = 5 + (seed() % 8); // 5..=12
    for call in 1..=batch {
        a.send(
            n2,
            Message::RpcRequest {
                call,
                body: StoreBytes::from(call.to_le_bytes().to_vec()),
            },
        );
    }
    pump_until(&mut a, &mut b, &mut a_events, &mut b_events, |_, _, evs| {
        delivered_corrs(evs).len() as u64 == 1 + batch
    });
    assert_eq!(a.peer_acked(n2), 1, "acks must be stuck at the anchor");

    // kill and redial a's connection: everything after the anchor is
    // retransmitted, and every retransmission must be suppressed
    a.disconnect(n2);
    a.connect(n2);
    let resend_deadline = Instant::now() + DEADLINE;
    while b.stats().duplicates < batch {
        assert!(
            Instant::now() < resend_deadline,
            "expected {batch} suppressed duplicates, got {:?}",
            b.stats()
        );
        drain(&mut a, &mut a_events);
        drain(&mut b, &mut b_events);
    }

    // restore the ack path and let the window drain
    b.connect(n1);
    pump_until(&mut a, &mut b, &mut a_events, &mut b_events, |a, _, _| {
        a.peer_acked(n2) == 1 + batch
    });

    // exactly-once, corr by corr: the delivered set equals the sent set
    let mut delivered = delivered_corrs(&b_events);
    let sent: Vec<u64> = sink
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MsgSend { .. }))
        .map(|e| e.corr.expect("sends carry corr"))
        .collect();
    assert_eq!(
        delivered.len() as u64,
        1 + batch,
        "dedup must leave each logical send applied exactly once"
    );
    let mut unique = delivered.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), delivered.len(), "a corr was applied twice");
    delivered.sort_unstable();
    let mut sent = sent;
    sent.sort_unstable();
    assert_eq!(
        delivered, sent,
        "every applied receive must pair with exactly one logical send"
    );
    assert!(
        b.stats().gaps == 0 && a.stats().gaps == 0,
        "nothing was lost in this schedule"
    );
    assert!(
        a.stats().resent >= batch,
        "the reconnect must actually have retransmitted"
    );
}

/// When the resend buffer overflows, the trimmed frames are gone for
/// good — the receiver must report the hole as a [`TransportEvent::Gap`]
/// rather than silently skipping the sequence numbers.
#[test]
fn resend_overflow_surfaces_a_gap_not_a_silent_skip() {
    let n1 = NodeId::from_raw(1);
    let n2 = NodeId::from_raw(2);
    let tiny = TcpConfig {
        resend_capacity: 2,
        ..TcpConfig::default()
    };
    let (mut a, mut b, _sink) = pair(tiny, TcpConfig::default());
    let mut a_events = Vec::new();
    let mut b_events = Vec::new();

    // anchor: seq 1 delivered and acknowledged
    a.send(
        n2,
        Message::RpcRequest {
            call: 0,
            body: StoreBytes::from(vec![0]),
        },
    );
    pump_until(&mut a, &mut b, &mut a_events, &mut b_events, |a, _, evs| {
        a.peer_acked(n2) >= 1 && delivered_corrs(evs).len() == 1
    });

    // while severed, overflow the 2-frame resend buffer: seqs 2..=4 are
    // trimmed and unrecoverable, 5 and 6 survive
    a.disconnect(n2);
    for call in 1..=5u64 {
        a.send(
            n2,
            Message::RpcRequest {
                call,
                body: StoreBytes::from(vec![u8::try_from(call).unwrap()]),
            },
        );
    }
    assert_eq!(a.peer_trimmed(n2), 3, "overflow must be counted");

    a.connect(n2);
    pump_until(&mut a, &mut b, &mut a_events, &mut b_events, |_, b, _| {
        b.stats().gaps >= 1
    });
    let gap = b_events
        .iter()
        .find_map(|e| match e {
            TransportEvent::Gap {
                from,
                expected,
                got,
            } => Some((*from, *expected, *got)),
            _ => None,
        })
        .expect("the hole must surface as an event");
    assert_eq!(
        gap,
        (n1, 2, 5),
        "the gap names exactly the trimmed range: expected seq 2, got 5"
    );

    // the surviving frames still arrive (masking degrades loudly, not
    // totally): anchor + seqs 5 and 6
    pump_until(&mut a, &mut b, &mut a_events, &mut b_events, |_, _, evs| {
        delivered_corrs(evs).len() == 3
    });
    assert_eq!(b.stats().fresh, 3);
    assert_eq!(b.stats().gaps, 1, "one hole, one report");
}
