//! Seeded torture tests for replicated objects under crash, recovery
//! and message-loss schedules, checked end-to-end by the trace auditor's
//! replication rules — plus one negative test per rule proving each
//! fires on a corrupted trace.

use std::sync::Arc;

use chroma_base::{NodeId, ObjectId};
use chroma_dist::{Message, Node, ReplicatedObject, Sim, TxnId, Write, RETRY_INTERVAL};
use chroma_obs::{
    Event, EventBus, EventKind, MemorySink, Obs, Observable, TraceAuditor, Violation,
};
use chroma_store::{codec, StoreBytes};

/// splitmix64 — one deterministic stream per seed (CI sweeps
/// `CHROMA_TORTURE_SEED` over a fixed matrix).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn torture_seed() -> u64 {
    std::env::var("CHROMA_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn obj() -> ObjectId {
    ObjectId::from_raw(100)
}

/// One full crash/recover/write/read schedule derived from `seed`.
///
/// Every crash is paired with a scheduled recovery, so quiescence runs
/// always terminate: an in-doubt participant's decision query finds its
/// coordinator again once the recovery event fires.
fn run_schedule(seed: u64) {
    let mut state = seed ^ 0x5DEE_CE66;
    let mut sim = Sim::new(seed);
    if splitmix(&mut state).is_multiple_of(2) {
        sim.net.loss = 0.05;
        sim.net.duplication = 0.05;
    }
    let bus = Arc::new(EventBus::new());
    let sink = Arc::new(MemorySink::new(500_000));
    bus.add_sink(sink.clone());
    sim.install_obs(Obs::new(bus.clone()));

    let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
    let replica = ReplicatedObject::create(&mut sim, obj(), &nodes, b"v0");

    for step in 0..12u64 {
        match splitmix(&mut state) % 4 {
            0 => {
                // Crash a member with recovery already scheduled, then
                // advance a bounded slice so later ops run against the
                // hole it leaves.
                let victim = nodes[(splitmix(&mut state) % 3) as usize];
                let downtime = RETRY_INTERVAL * (1 + splitmix(&mut state) % 4);
                replica.crash_member(&mut sim, victim, downtime);
                sim.run(200);
            }
            1 => {
                // Write, sometimes losing a member mid-2PC.
                let payload = format!("s{step}");
                let wrote = replica.write(&mut sim, payload.as_bytes()).is_some();
                if wrote && splitmix(&mut state).is_multiple_of(3) {
                    let victim = nodes[(splitmix(&mut state) % 3) as usize];
                    replica.crash_member(&mut sim, victim, RETRY_INTERVAL * 2);
                }
                sim.run_to_quiescence();
            }
            2 => {
                // Read from whatever copy is freshest right now; the
                // auditor checks it is never stale nor lagging.
                let _ = replica.read(&sim);
                sim.run(50);
            }
            _ => {
                sim.run(500);
            }
        }
    }

    // Converge: recover everyone, settle, force a final write.
    for &n in &nodes {
        if !sim.node(n).up {
            sim.schedule_recover(n, RETRY_INTERVAL);
        }
    }
    sim.run_to_quiescence();
    replica.write(&mut sim, b"final").expect("all members up");
    sim.run_to_quiescence();

    let versions = replica.versions(&sim);
    assert_eq!(versions.len(), 3, "seed {seed}: a member never recovered");
    let top = versions.iter().map(|&(_, v)| v).max().unwrap();
    assert!(
        versions.iter().all(|&(_, v)| v == top),
        "seed {seed}: diverged {versions:?}"
    );
    for &n in &nodes {
        assert!(
            sim.node(n).stale.is_empty(),
            "seed {seed}: {n:?} still stale after convergence"
        );
    }
    let (version, bytes) = replica.read(&sim).expect("available");
    assert_eq!(version, top, "seed {seed}");
    assert_eq!(&bytes[..], b"final", "seed {seed}");

    assert_eq!(sink.dropped(), 0, "seed {seed}: trace ring overflowed");
    // The final write/read alone guarantee the replication vocabulary is
    // present, so a clean audit is never vacuous.
    assert!(bus.counter("replica_write") >= 1, "seed {seed}");
    assert!(bus.counter("replica_install") >= 3, "seed {seed}");
    assert!(bus.counter("replica_read") >= 1, "seed {seed}");
    let report = TraceAuditor::audit_events(&sink.events());
    assert!(report.is_clean(), "seed {seed} audit failed:\n{report}");
}

#[test]
fn seed_matrix_replica_torture() {
    let base = torture_seed();
    for sub in 0..4u64 {
        run_schedule(base.wrapping_mul(1000).wrapping_add(sub));
    }
}

// ---- negative tests: each replication rule fires on a bad trace ----

fn ev(at_us: u64, kind: EventKind) -> Event {
    Event::at(at_us, kind)
}

/// R5: a member installing a version below what it already holds.
#[test]
fn auditor_flags_replica_version_regression() {
    let n = NodeId::from_raw(1);
    let events = vec![
        ev(
            1,
            EventKind::ReplicaInstall {
                node: n,
                object: obj(),
                version: 2,
            },
        ),
        ev(
            2,
            EventKind::ReplicaInstall {
                node: n,
                object: obj(),
                version: 1,
            },
        ),
    ];
    let report = TraceAuditor::audit_events(&events);
    assert!(!report.is_clean());
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplicaVersionRegression { .. })),
        "{report}"
    );
}

/// R6: a read served by a member still catching up — whether reported
/// via an open catch-up window or via the event's own stale flag.
#[test]
fn auditor_flags_read_during_catchup() {
    let n = NodeId::from_raw(1);
    let events = vec![
        ev(
            1,
            EventKind::CatchupBegin {
                node: n,
                object: obj(),
            },
        ),
        ev(
            2,
            EventKind::ReplicaRead {
                node: n,
                object: obj(),
                version: 0,
                stale: false,
            },
        ),
    ];
    let report = TraceAuditor::audit_events(&events);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReadDuringCatchup { .. })),
        "{report}"
    );

    // The stale flag alone is also damning, no window required.
    let flagged = vec![ev(
        1,
        EventKind::ReplicaRead {
            node: n,
            object: obj(),
            version: 3,
            stale: true,
        },
    )];
    let report = TraceAuditor::audit_events(&flagged);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReadDuringCatchup { .. })),
        "{report}"
    );
}

/// R7: a read lagging more than the staleness window behind the highest
/// installed version of the object.
#[test]
fn auditor_flags_staleness_window_breach() {
    let fresh = NodeId::from_raw(1);
    let lagging = NodeId::from_raw(2);
    let events = vec![
        ev(
            1,
            EventKind::ReplicaInstall {
                node: fresh,
                object: obj(),
                version: 5,
            },
        ),
        ev(
            2,
            EventKind::ReplicaRead {
                node: lagging,
                object: obj(),
                version: 1,
                stale: false,
            },
        ),
    ];
    let report = TraceAuditor::audit_events(&events);
    assert!(!report.is_clean());
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StalenessWindowExceeded { .. })),
        "{report}"
    );

    // A wider window forgives the same trace.
    let mut lenient = TraceAuditor::new().with_staleness_window(4);
    for event in &events {
        lenient.observe(event);
    }
    assert!(lenient.finish().is_clean());
}

/// Regression: a commit decision that was delayed past a node's
/// catch-up must not reinstall the older version it had prepared (the
/// divergence rule R5 exists to catch exactly this).
#[test]
fn late_decision_does_not_roll_back_caught_up_replica() {
    let id = NodeId::from_raw(1);
    let coord = NodeId::from_raw(2);
    let peer = NodeId::from_raw(3);
    let mut node = Node::new(id);
    node.replica_peers.insert(obj(), vec![peer]);
    node.write_versioned(obj(), 0, b"v0");

    // Prepare version 1; the decision is delayed in the network.
    let payload = codec::to_bytes(&(1u64, b"v1".to_vec())).unwrap();
    node.handle_message(
        coord,
        Message::Prepare {
            txn: TxnId(7),
            writes: vec![Write {
                object: obj(),
                state: StoreBytes::from(payload),
            }],
            coordinator: coord,
        },
    );
    // Meanwhile the node catches up to version 2 from its peers.
    node.write_versioned(obj(), 2, b"v2");
    // The late commit must not roll the copy back to version 1.
    node.handle_message(
        coord,
        Message::Decision {
            txn: TxnId(7),
            commit: true,
        },
    );
    assert_eq!(
        node.read_versioned(obj()),
        Some((2, StoreBytes::from(b"v2".to_vec())))
    );
}
