//! Network partitions: two-phase commit safety and replica behaviour
//! when the network splits rather than nodes crashing.

use chroma_base::ObjectId;
use chroma_dist::{ReplicatedObject, Sim, Write};
use chroma_store::StoreBytes;

fn w(object: u64, value: u8) -> Write {
    Write {
        object: ObjectId::from_raw(object),
        state: StoreBytes::from(vec![value]),
    }
}

#[test]
fn tpc_blocked_by_partition_settles_after_heal() {
    let mut sim = Sim::new(61);
    let coord = sim.add_node();
    let p1 = sim.add_node();
    let p2 = sim.add_node();
    // Cut the coordinator off from p2 *before* the transaction starts.
    sim.partition(coord, p2);
    let txn = sim.begin_transaction(coord, vec![(p1, vec![w(1, 1)]), (p2, vec![w(2, 2)])]);
    sim.run_to_quiescence();
    // p2's vote never arrives: the coordinator aborts after retries;
    // both participants end consistent (nothing installed).
    assert_eq!(sim.coordinator_outcome(coord, txn), None);
    assert!(sim.node(p1).store.read(ObjectId::from_raw(1)).is_none());
    assert!(sim.node(p2).store.read(ObjectId::from_raw(2)).is_none());
    assert!(!sim.node(p1).in_doubt(txn));
    // Heal: a fresh transaction now commits everywhere.
    sim.heal_all();
    let txn2 = sim.begin_transaction(coord, vec![(p1, vec![w(1, 5)]), (p2, vec![w(2, 6)])]);
    sim.run_to_quiescence();
    assert_eq!(sim.coordinator_outcome(coord, txn2), Some(true));
    assert!(sim.node(p2).store.read(ObjectId::from_raw(2)).is_some());
}

#[test]
fn partition_after_prepare_leaves_participant_in_doubt_until_heal() {
    let mut sim = Sim::new(62);
    let coord = sim.add_node();
    let p = sim.add_node();
    let txn = sim.begin_transaction(coord, vec![(p, vec![w(1, 9)])]);
    // Let the prepare and the vote through, then cut the link before
    // the decision can arrive.
    sim.run(4);
    sim.partition(coord, p);
    // Drain a bounded slice of events: the participant keeps querying
    // into the void (blocked), which is exactly the classic 2PC
    // blocking window — the paper's model accepts it, recovery resolves
    // it.
    sim.run(400);
    if sim.node(p).in_doubt(txn) {
        sim.heal_all();
        sim.run_to_quiescence();
    }
    assert!(!sim.node(p).in_doubt(txn), "in doubt after heal");
    // Whatever was decided, it is consistent with the install state.
    let installed = sim.node(p).store.read(ObjectId::from_raw(1)).is_some();
    match sim.coordinator_outcome(coord, txn) {
        Some(true) => assert!(installed),
        _ => assert!(!installed),
    }
}

#[test]
fn replicated_object_survives_minority_partition() {
    let mut sim = Sim::new(63);
    let nodes = vec![sim.add_node(), sim.add_node(), sim.add_node()];
    let replica = ReplicatedObject::create(&mut sim, ObjectId::from_raw(9), &nodes, b"v0");
    // Split node 2 away from {0, 1}.
    sim.partition_group(&nodes[2..]);
    // A write coordinated from the majority side: node 2 cannot
    // prepare, so the coordinator aborts... write-all-available only
    // writes UP nodes; node 2 is up but unreachable — the transaction
    // retries then aborts, and the write fails this round. Heal and
    // retry.
    let txn = replica.write(&mut sim, b"v1");
    sim.run_to_quiescence();
    let committed = txn
        .map(|t| sim.coordinator_outcome(nodes[0], t) == Some(true))
        .unwrap_or(false);
    if !committed {
        sim.heal_all();
        replica.write(&mut sim, b"v1").expect("write after heal");
        sim.run_to_quiescence();
    } else {
        sim.heal_all();
    }
    sim.run_to_quiescence();
    let (version, state) = replica.read(&sim).expect("readable");
    assert_eq!(&state[..], b"v1");
    assert!(version >= 1);
}

#[test]
fn asymmetric_partitions_do_not_break_atomicity() {
    // Sever links one by one across several transactions; the invariant
    // is never violated.
    for seed in 0..10u64 {
        let mut sim = Sim::new(700 + seed);
        sim.net.loss = 0.1;
        let coord = sim.add_node();
        let p1 = sim.add_node();
        let p2 = sim.add_node();
        if seed % 2 == 0 {
            sim.partition(coord, p1);
        }
        if seed % 3 == 0 {
            sim.partition(p1, p2);
        }
        let txn = sim.begin_transaction(coord, vec![(p1, vec![w(1, 1)]), (p2, vec![w(2, 2)])]);
        sim.run_to_quiescence();
        sim.heal_all();
        sim.run_to_quiescence();
        let i1 = sim.node(p1).store.read(ObjectId::from_raw(1)).is_some();
        let i2 = sim.node(p2).store.read(ObjectId::from_raw(2)).is_some();
        // After healing and quiescence, any lingering in-doubt state
        // must have resolved consistently.
        let outcome = sim.coordinator_outcome(coord, txn);
        if outcome == Some(true) {
            // Committed: both must eventually install. In-doubt
            // participants query after heal... they do so only on
            // recovery or timers; run more.
            assert!(i1 && i2, "seed {seed}: committed but installs ({i1},{i2})");
        } else {
            assert!(!i1 && !i2, "seed {seed}: aborted but installs ({i1},{i2})");
        }
    }
}
