//! Property test: any random fault schedule must yield an event trace
//! that the offline [`TraceAuditor`] certifies clean, with observability
//! counters agreeing with the simulator's own network statistics.

use std::sync::Arc;

use chroma_base::ObjectId;
use chroma_dist::{Sim, Write, RETRY_INTERVAL};
use chroma_obs::{EventBus, MemorySink, Obs, Observable, TraceAuditor};
use chroma_store::StoreBytes;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_fault_schedules_audit_clean(
        seed in 0u64..10_000,
        loss_permille in 0u64..300,
        dup_permille in 0u64..300,
        crash_victim in 0usize..3,
        crash_slot in 0u64..6,
    ) {
        let mut sim = Sim::new(seed);
        sim.net.loss = loss_permille as f64 / 1000.0;
        sim.net.duplication = dup_permille as f64 / 1000.0;
        let bus = Arc::new(EventBus::new());
        let sink = Arc::new(MemorySink::new(500_000));
        bus.add_sink(sink.clone());
        sim.install_obs(Obs::new(bus.clone()));

        let nodes = [sim.add_node(), sim.add_node(), sim.add_node()];
        let coord = nodes[0];
        let writes = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (
                    n,
                    vec![Write {
                        object: ObjectId::from_raw(i as u64 + 1),
                        state: StoreBytes::from(vec![i as u8 + 1]),
                    }],
                )
            })
            .collect();
        let _txn = sim.begin_transaction(coord, writes);
        let when = crash_slot * (RETRY_INTERVAL / 3);
        sim.schedule_crash(nodes[crash_victim], when);
        sim.schedule_recover(nodes[crash_victim], when + 25 * RETRY_INTERVAL);
        sim.run_to_quiescence();

        prop_assert_eq!(sink.dropped(), 0, "trace ring overflowed");
        let events = sink.events();
        let report = TraceAuditor::audit_events(&events);
        prop_assert!(report.is_clean(), "audit failed:\n{}", report);

        // The bus counters and the simulator's NetStats are independent
        // tallies of the same history; they must agree exactly.
        let snap = bus.snapshot();
        let stats = sim.net_stats();
        prop_assert_eq!(snap.counter("msg_send"), stats.sent);
        prop_assert_eq!(snap.counter("msg_drop"), stats.dropped);
        prop_assert_eq!(snap.counter("msg_dup"), stats.duplicated);
        prop_assert_eq!(snap.counter("msg_deliver"), stats.delivered);

        // Serialising the trace to JSONL and re-auditing the text must
        // reach the same verdict (the wire format loses nothing the
        // auditor needs).
        let jsonl: String = events
            .iter()
            .map(|e| e.to_json_line() + "\n")
            .collect();
        let report2 = TraceAuditor::audit_jsonl(&jsonl).expect("well-formed trace");
        prop_assert!(report2.is_clean());
    }
}
