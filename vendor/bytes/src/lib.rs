//! Offline shim for the `bytes` crate.
//!
//! The workspace only needs an immutable, cheaply cloneable byte buffer
//! ([`Bytes`]); it is backed by `Arc<[u8]>` so clones are refcount bumps,
//! matching the cost model the real crate provides for frozen buffers.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Returns the number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    fn conversions_round_trip() {
        let b = Bytes::from(b"hi");
        assert_eq!(Vec::from(b.clone()), b"hi".to_vec());
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![0x41, 0x00]);
        assert_eq!(format!("{b:?}"), "b\"A\\x00\"");
    }
}
