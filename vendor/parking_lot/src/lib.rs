//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `parking_lot` API it actually uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`] with non-poisoning guards. The
//! semantics match `parking_lot` where the workspace relies on them:
//! `lock()` returns the guard directly (a poisoned `std` lock is
//! recovered rather than propagated, mirroring `parking_lot`'s absence
//! of poisoning) and `Condvar::wait*` take the guard by `&mut`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of a [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cvar.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
