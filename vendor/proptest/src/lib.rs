//! Offline shim of the proptest framework.
//!
//! This build environment cannot reach crates.io, so the workspace
//! vendors the slice of proptest its property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! strategies for integer ranges, tuples, `Just`, simple `".{m,n}"`
//! string patterns, `prop::collection::{vec, hash_map}`, weighted
//! unions via `prop_oneof!`, `any::<T>()` over an [`Arbitrary`] trait,
//! and the `proptest!` / `prop_assert*!` macros.
//!
//! Differences from upstream, deliberate for offline determinism:
//! cases are generated from a fixed per-test seed (same inputs every
//! run), and failing cases are reported without shrinking — the panic
//! message carries the case number so a failure is reproducible by
//! construction.

#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for
    /// the inner levels and returns the strategy for one level up.
    /// `depth` bounds nesting; the sizing hints are accepted for API
    /// compatibility but unused (depth already bounds the output).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Each level either stops at a leaf or recurses one deeper,
            // so generated values nest at most `depth` levels.
            current = Union::new(vec![(1, leaf.clone()), (1, recurse(current).boxed())]).boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! requires at least one arm with non-zero weight"
        );
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

// ---------------------------------------------------------------------
// Range strategies.

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// String pattern strategy: the workspace only uses `".{m,n}"`.

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_simple_pattern(self).unwrap_or_else(|| {
            panic!("vendored proptest only supports \".{{m,n}}\" string patterns, got {self:?}")
        });
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| {
                const ALPHABET: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
                ALPHABET[rng.gen_range(0..ALPHABET.len())] as char
            })
            .collect()
    }
}

/// Parses `".{m,n}"` into `(m, n)`.
fn parse_simple_pattern(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = rest.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

// ---------------------------------------------------------------------
// Composite strategies.

macro_rules! tuple_strategy {
    ($(($idx:tt $name:ident)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!((0 S0));
tuple_strategy!((0 S0), (1 S1));
tuple_strategy!((0 S0), (1 S1), (2 S2));
tuple_strategy!((0 S0), (1 S1), (2 S2), (3 S3));
tuple_strategy!((0 S0), (1 S1), (2 S2), (3 S3), (4 S4));

/// A `Vec` of strategies generates element-wise (used for per-slot
/// strategies like a forest's per-node parent choice).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------
// Arbitrary + any.

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uniform_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
            }
        }
    )*};
}

arbitrary_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.gen_bool(0.5) {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

arbitrary_tuple!(T0);
arbitrary_tuple!(T0, T1);
arbitrary_tuple!(T0, T1, T2);
arbitrary_tuple!(T0, T1, T2, T3);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Collection strategies.

/// Collection strategies (`prop::collection::{vec, hash_map}`).
pub mod collection {
    use super::{Hash, HashMap, Range, RangeInclusive, Rng, Strategy, TestRng};

    /// A generated collection's size range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max_inclusive)
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashMap<K, V>`; duplicate keys collapse, so maps
    /// may come out smaller than the drawn size.
    #[derive(Clone)]
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Eq + Hash,
    {
        type Value = HashMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            let mut out = HashMap::with_capacity(len);
            for _ in 0..len {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// A strategy for hash maps of `key`/`value` with a size in `size`.
    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> HashMapStrategy<K, V> {
        HashMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Runner.

/// Per-run configuration of the `proptest!` harness.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property test: `body` runs once per case with a fresh,
/// deterministically seeded RNG; an `Err` fails the test with the case
/// number (inputs are reproducible from it, no shrinking needed).
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    let base_seed = hasher.finish();
    for case in 0..config.cases {
        let mut rng =
            TestRng::seed_from_u64(base_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(message) = body(&mut rng) {
            panic!(
                "property `{name}` failed on case {case}/{}: {message}",
                config.cases
            );
        }
    }
}

/// One-stop imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------
// Macros.

/// Defines property tests: each `fn name(input in strategy, ...)` body
/// runs for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_proptest(
                &__config,
                stringify!($name),
                |__rng| -> ::core::result::Result<(), ::std::string::String> {
                    $(let $pat = $crate::Strategy::generate(&($strategy), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} ({})", stringify!($cond), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the enclosing property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), __l, __r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right),
                        ::std::format!($($fmt)+), __l, __r
                    ));
                }
            }
        }
    };
}

/// Fails the enclosing property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err(::std::format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l
                    ));
                }
            }
        }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $( (1u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_generate_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        let strategy = prop_oneof![2 => 0u64..10, 1 => 90u64..100];
        let mut low = 0;
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strategy, &mut rng);
            assert!(v < 10 || (90..100).contains(&v));
            if v < 10 {
                low += 1;
            }
        }
        assert!(low > 80, "weighting skews low: {low}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn strings_match_pattern(s in ".{0,8}") {
            prop_assert!(s.len() <= 8);
        }

        #[test]
        fn recursive_is_bounded(n in nested()) {
            prop_assert!(depth(&n) <= 3 + 1);
        }
    }

    #[derive(Clone, Debug)]
    enum Nest {
        Leaf,
        Node(Box<Nest>),
    }

    fn depth(n: &Nest) -> u32 {
        match n {
            Nest::Leaf => 1,
            Nest::Node(inner) => 1 + depth(inner),
        }
    }

    fn nested() -> impl crate::Strategy<Value = Nest> {
        Just(Nest::Leaf)
            .prop_recursive(3, 8, 1, |inner| inner.prop_map(|n| Nest::Node(Box::new(n))))
    }
}
