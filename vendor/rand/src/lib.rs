//! Offline shim for the `rand` crate (0.8 API surface).
//!
//! The workspace seeds every generator explicitly (`seed_from_u64`) and
//! draws with `gen_bool` / `gen_range` only, so this shim provides
//! exactly that: a deterministic xoshiro256** generator behind
//! [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] traits, and uniform
//! range sampling for the integer types in use. Streams are stable
//! across runs for a given seed (the property the simulators rely on),
//! though not bit-identical to upstream `rand`'s ChaCha-based `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for `StdRng`).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as upstream rand does for small seeds.
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a u64 uniform in `[0, span)` without modulo bias
/// (Lemire's rejection method on the high 64 bits of a 128-bit product).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                ((self.start as i128) + offset as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end,
                    "cannot sample empty range {}..={}",
                    start,
                    end
                );
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width u64 range: every word is a valid sample.
                    return rng.next_u64() as $ty;
                }
                let offset = uniform_below(rng, span as u64);
                ((start as i128) + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty f64 range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** — fast, small,
    /// and deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(42).gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
            })
            .count();
        assert!(same < 100);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let x = rng.gen_range(-4i32..5);
            assert!((-4..5).contains(&x));
        }
        // Degenerate inclusive range must return its single value.
        assert_eq!(rng.gen_range(8u64..=8), 8);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [0usize; 5];
        for _ in 0..5_000 {
            seen[rng.gen_range(0usize..5)] += 1;
        }
        assert!(seen.iter().all(|&n| n > 700), "seen = {seen:?}");
    }
}
