//! Offline shim of the criterion benchmark harness.
//!
//! This build environment cannot reach crates.io, so the workspace
//! vendors the slice of criterion the benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput` /
//! `bench_function` / `finish`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it times a bounded
//! number of iterations per benchmark and prints the mean wall-clock
//! time — enough to compare figures relative to each other in one run,
//! not a substitute for real criterion output.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim runs one setup
/// per measured iteration regardless; the variants exist for API
/// compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Declared throughput of one benchmark, echoed in the report line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Declares the work done per iteration for the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark routine and prints its mean iteration cost.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        let mean_ns = if bencher.iterations == 0 {
            0
        } else {
            bencher.total.as_nanos() / u128::from(bencher.iterations)
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean_ns > 0 => {
                let gib_s = (bytes as f64) / (mean_ns as f64) * 1e9 / (1024.0 * 1024.0 * 1024.0);
                format!("  {gib_s:.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if mean_ns > 0 => {
                let elem_s = (n as f64) / (mean_ns as f64) * 1e9;
                format!("  {elem_s:.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {mean_ns} ns/iter ({} iters){rate}",
            self.name, bencher.iterations
        );
        self
    }

    /// Ends the group (report lines are already printed eagerly).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark routine.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` back-to-back for the configured sample count
    /// (after one untimed warm-up call).
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Bundles benchmark functions into a single named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        // one warm-up call plus three timed samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut setups = 0u32;
        let mut runs = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert_eq!(setups, 3);
        assert_eq!(runs, 3);
    }
}
