//! Offline shim of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! The workspace derives serde traits only on plain, non-generic structs
//! and enums with no `#[serde(...)]` attributes, so this macro supports
//! exactly that shape and rejects anything fancier with a compile-time
//! panic. It parses the item's token stream by hand (no `syn`/`quote` —
//! they are unreachable in this offline environment), renders the impl
//! as Rust source, and re-parses it into a token stream. The generated
//! impls speak the same data-model calls as upstream serde_derive
//! (`serialize_struct` + fields in declaration order, variant indices as
//! `u32`, newtype structs via `serialize_newtype_struct`), so encoded
//! bytes are interchangeable with upstream output for these shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(Vec<String>),
    NamedStruct(Vec<(String, String)>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(Vec<String>),
    Named(Vec<(String, String)>),
}

/// Derives `serde::Serialize` for a plain struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a plain struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing.

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = expect_ident(&mut tokens, "`struct` or `enum`");
    let name = expect_ident(&mut tokens, "type name");
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types (on `{name}`)");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream().into_iter().peekable()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(parse_tuple_fields(g.stream().into_iter().peekable()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream().into_iter().peekable()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };
    Item { name, kind }
}

/// Consumes leading `#[...]` attributes and `pub` / `pub(...)` markers.
fn skip_attrs_and_vis(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &mut Tokens, what: &str) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

/// Collects one type's tokens up to a top-level `,` (consumed) or the end.
/// Commas inside angle brackets or delimited groups belong to the type.
fn collect_type(tokens: &mut Tokens) -> String {
    let mut depth = 0i32;
    let mut parts: Vec<String> = Vec::new();
    while let Some(tt) = tokens.peek() {
        if depth == 0 {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    tokens.next();
                    break;
                }
            }
        }
        let tt = tokens.next().expect("peeked token");
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        parts.push(tt.to_string());
    }
    parts.join(" ")
}

fn parse_named_fields(mut tokens: Tokens) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected field name, found {tt:?}");
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push((name.to_string(), collect_type(&mut tokens)));
    }
    fields
}

fn parse_tuple_fields(mut tokens: Tokens) -> Vec<String> {
    let mut types = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let ty = collect_type(&mut tokens);
        if ty.is_empty() {
            break;
        }
        types.push(ty);
    }
    types
}

fn parse_variants(mut tokens: Tokens) -> Vec<Variant> {
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected variant name, found {tt:?}");
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                VariantFields::Tuple(parse_tuple_fields(g.into_iter().peekable()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                VariantFields::Named(parse_named_fields(g.into_iter().peekable()))
            }
            _ => VariantFields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            match p.as_char() {
                '=' => panic!("explicit discriminants are not supported (variant `{name}`)"),
                ',' => {
                    tokens.next();
                }
                _ => {}
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

// ---------------------------------------------------------------------
// Serialize generation.

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => {
            format!("serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Kind::TupleStruct(types) if types.len() == 1 => format!(
            "serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Kind::TupleStruct(types) => {
            let mut body = format!(
                "let mut __state = serde::Serializer::serialize_tuple_struct(\
                 __serializer, \"{name}\", {}usize)?;\n",
                types.len()
            );
            for index in 0..types.len() {
                body.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{index})?;\n"
                ));
            }
            body.push_str("serde::ser::SerializeTupleStruct::end(__state)");
            body
        }
        Kind::NamedStruct(fields) => {
            let mut body = format!(
                "let mut __state = serde::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for (field, _) in fields {
                body.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{field}\", &self.{field})?;\n"
                ));
            }
            body.push_str("serde::ser::SerializeStruct::end(__state)");
            body
        }
        Kind::Enum(variants) => gen_serialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, __serializer: __S)\n\
         -> core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

fn gen_serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (index, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.fields {
            VariantFields::Unit => arms.push_str(&format!(
                "{name}::{vname} => serde::Serializer::serialize_unit_variant(\
                 __serializer, \"{name}\", {index}u32, \"{vname}\"),\n"
            )),
            VariantFields::Tuple(types) if types.len() == 1 => arms.push_str(&format!(
                "{name}::{vname}(__f0) => serde::Serializer::serialize_newtype_variant(\
                 __serializer, \"{name}\", {index}u32, \"{vname}\", __f0),\n"
            )),
            VariantFields::Tuple(types) => {
                let bindings: Vec<String> = (0..types.len()).map(|i| format!("__f{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut __state = serde::Serializer::serialize_tuple_variant(\
                     __serializer, \"{name}\", {index}u32, \"{vname}\", {}usize)?;\n",
                    bindings.join(", "),
                    types.len()
                );
                for binding in &bindings {
                    arm.push_str(&format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {binding})?;\n"
                    ));
                }
                arm.push_str("serde::ser::SerializeTupleVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
            VariantFields::Named(fields) => {
                let bindings: Vec<&str> = fields.iter().map(|(f, _)| f.as_str()).collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut __state = serde::Serializer::serialize_struct_variant(\
                     __serializer, \"{name}\", {index}u32, \"{vname}\", {}usize)?;\n",
                    bindings.join(", "),
                    fields.len()
                );
                for field in &bindings {
                    arm.push_str(&format!(
                        "serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{field}\", {field})?;\n"
                    ));
                }
                arm.push_str("serde::ser::SerializeStructVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------
// Deserialize generation.

/// Renders `visit_seq` statements pulling `fields` in order into
/// `__f0..__fN` bindings, then the given constructor expression.
fn gen_visit_seq(
    value_ty: &str,
    expecting: &str,
    types: &[String],
    constructor: &str,
    visitor_name: &str,
) -> String {
    let mut body = String::new();
    for (index, ty) in types.iter().enumerate() {
        body.push_str(&format!(
            "let __f{index}: {ty} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             core::option::Option::Some(__v) => __v,\n\
             core::option::Option::None => return core::result::Result::Err(\
             serde::de::Error::custom(\"{expecting} is missing element {index}\")),\n\
             }};\n"
        ));
    }
    format!(
        "struct {visitor_name};\n\
         impl<'de> serde::de::Visitor<'de> for {visitor_name} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
         __f.write_str(\"{expecting}\")\n\
         }}\n\
         fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
         -> core::result::Result<{value_ty}, __A::Error> {{\n\
         {body}\
         core::result::Result::Ok({constructor})\n\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
             __f.write_str(\"unit struct {name}\")\n\
             }}\n\
             fn visit_unit<__E: serde::de::Error>(self) -> core::result::Result<{name}, __E> {{\n\
             core::result::Result::Ok({name})\n\
             }}\n\
             }}\n\
             serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
        ),
        Kind::TupleStruct(types) if types.len() == 1 => {
            let ty = &types[0];
            format!(
                "struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
                 __f.write_str(\"newtype struct {name}\")\n\
                 }}\n\
                 fn visit_newtype_struct<__D: serde::Deserializer<'de>>(self, __d: __D)\n\
                 -> core::result::Result<{name}, __D::Error> {{\n\
                 core::result::Result::Ok({name}(<{ty} as serde::Deserialize<'de>>::deserialize(__d)?))\n\
                 }}\n\
                 }}\n\
                 serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor)"
            )
        }
        Kind::TupleStruct(types) => {
            let constructor = format!(
                "{name}({})",
                (0..types.len())
                    .map(|i| format!("__f{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let visitor = gen_visit_seq(
                name,
                &format!("tuple struct {name}"),
                types,
                &constructor,
                "__Visitor",
            );
            format!(
                "{visitor}\
                 serde::Deserializer::deserialize_tuple_struct(\
                 __deserializer, \"{name}\", {}usize, __Visitor)",
                types.len()
            )
        }
        Kind::NamedStruct(fields) => {
            let types: Vec<String> = fields.iter().map(|(_, ty)| ty.clone()).collect();
            let constructor = format!(
                "{name} {{ {} }}",
                fields
                    .iter()
                    .enumerate()
                    .map(|(i, (f, _))| format!("{f}: __f{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let field_names = fields
                .iter()
                .map(|(f, _)| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let visitor = gen_visit_seq(
                name,
                &format!("struct {name}"),
                &types,
                &constructor,
                "__Visitor",
            );
            format!(
                "{visitor}\
                 serde::Deserializer::deserialize_struct(\
                 __deserializer, \"{name}\", &[{field_names}], __Visitor)"
            )
        }
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D)\n\
         -> core::result::Result<Self, __D::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (index, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.fields {
            VariantFields::Unit => arms.push_str(&format!(
                "{index}u32 => {{\n\
                 serde::de::VariantAccess::unit_variant(__variant)?;\n\
                 core::result::Result::Ok({name}::{vname})\n\
                 }},\n"
            )),
            VariantFields::Tuple(types) if types.len() == 1 => {
                let ty = &types[0];
                arms.push_str(&format!(
                    "{index}u32 => core::result::Result::Ok({name}::{vname}(\
                     serde::de::VariantAccess::newtype_variant::<{ty}>(__variant)?)),\n"
                ));
            }
            VariantFields::Tuple(types) => {
                let constructor = format!(
                    "{name}::{vname}({})",
                    (0..types.len())
                        .map(|i| format!("__f{i}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let visitor_name = format!("__Variant{index}Visitor");
                let visitor = gen_visit_seq(
                    name,
                    &format!("tuple variant {name}::{vname}"),
                    types,
                    &constructor,
                    &visitor_name,
                );
                arms.push_str(&format!(
                    "{index}u32 => {{\n\
                     {visitor}\
                     serde::de::VariantAccess::tuple_variant(__variant, {}usize, {visitor_name})\n\
                     }},\n",
                    types.len()
                ));
            }
            VariantFields::Named(fields) => {
                let types: Vec<String> = fields.iter().map(|(_, ty)| ty.clone()).collect();
                let constructor = format!(
                    "{name}::{vname} {{ {} }}",
                    fields
                        .iter()
                        .enumerate()
                        .map(|(i, (f, _))| format!("{f}: __f{i}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let field_names = fields
                    .iter()
                    .map(|(f, _)| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                let visitor_name = format!("__Variant{index}Visitor");
                let visitor = gen_visit_seq(
                    name,
                    &format!("struct variant {name}::{vname}"),
                    &types,
                    &constructor,
                    &visitor_name,
                );
                arms.push_str(&format!(
                    "{index}u32 => {{\n\
                     {visitor}\
                     serde::de::VariantAccess::struct_variant(\
                     __variant, &[{field_names}], {visitor_name})\n\
                     }},\n"
                ));
            }
        }
    }
    let variant_names = variants
        .iter()
        .map(|v| format!("\"{}\"", v.name))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
         type Value = {name};\n\
         fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
         __f.write_str(\"enum {name}\")\n\
         }}\n\
         fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A)\n\
         -> core::result::Result<{name}, __A::Error> {{\n\
         let (__index, __variant) = serde::de::EnumAccess::variant::<u32>(__data)?;\n\
         match __index {{\n\
         {arms}\
         __other => core::result::Result::Err(serde::de::Error::custom(\
         format!(\"invalid variant index {{}} for enum {name}\", __other))),\n\
         }}\n\
         }}\n\
         }}\n\
         serde::Deserializer::deserialize_enum(\
         __deserializer, \"{name}\", &[{variant_names}], __Visitor)"
    )
}
