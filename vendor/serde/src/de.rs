//! Deserialization half of the data model (mirrors `serde::de`).

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Raised by a [`Deserializer`] when the input does not match the type.
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Builds this value from `deserializer`.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful alternative to [`Deserialize`]; `PhantomData<T>` is the
/// stateless seed used by the default convenience methods.
pub trait DeserializeSeed<'de>: Sized {
    /// The type this seed produces.
    type Value;

    /// Builds the value from `deserializer`.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T> DeserializeSeed<'de> for PhantomData<T>
where
    T: Deserialize<'de>,
{
    type Value = T;

    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A data format that can produce any value in the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error raised on failure.
    type Error: Error;

    /// Asks a self-describing format to pick the shape itself.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a string, possibly borrowed.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects bytes, possibly borrowed.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a tuple of known length.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Expects a struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Expects a struct-field or enum-variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips over whatever value comes next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable (text vs binary).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Formats a visitor's expectation, for default error messages.
struct Expecting<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(visitor: &V, got: &str) -> E {
    E::custom(format!(
        "invalid type: {got}, expected {}",
        Expecting(visitor)
    ))
}

macro_rules! default_visit {
    ($($method:ident : $ty:ty => $name:literal),* $(,)?) => {$(
        #[doc = concat!("Receives ", $name, "; errors unless overridden.")]
        fn $method<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
            Err(unexpected(&self, $name))
        }
    )*};
}

/// Receives values from a [`Deserializer`] and builds `Self::Value`.
///
/// Every `visit_*` method defaults to a type-mismatch error built from
/// [`Visitor::expecting`]; implementors override the shapes they accept.
pub trait Visitor<'de>: Sized {
    /// The type this visitor produces.
    type Value;

    /// Writes "what was expected" for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    default_visit! {
        visit_bool: bool => "a boolean",
        visit_i8: i8 => "an i8",
        visit_i16: i16 => "an i16",
        visit_i32: i32 => "an i32",
        visit_i64: i64 => "an i64",
        visit_i128: i128 => "an i128",
        visit_u8: u8 => "a u8",
        visit_u16: u16 => "a u16",
        visit_u32: u32 => "a u32",
        visit_u64: u64 => "a u64",
        visit_u128: u128 => "a u128",
        visit_f32: f32 => "an f32",
        visit_f64: f64 => "an f64",
        visit_char: char => "a character",
    }

    /// Receives a transient string slice.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(unexpected(&self, "a string"))
    }

    /// Receives a string borrowed from the input; defaults to
    /// [`Visitor::visit_str`].
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Receives an owned string; defaults to [`Visitor::visit_str`].
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Receives a transient byte slice.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(unexpected(&self, "bytes"))
    }

    /// Receives bytes borrowed from the input; defaults to
    /// [`Visitor::visit_bytes`].
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Receives an owned byte buffer; defaults to [`Visitor::visit_bytes`].
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Receives `Option::None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "none"))
    }

    /// Receives the content of `Option::Some`.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "some"))
    }

    /// Receives `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "unit"))
    }

    /// Receives the content of a newtype struct.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "a newtype struct"))
    }

    /// Receives the elements of a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "a sequence"))
    }

    /// Receives the entries of a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "a map"))
    }

    /// Receives an enum variant.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "an enum"))
    }
}

/// Element-by-element access to a sequence being deserialized.
pub trait SeqAccess<'de> {
    /// Error raised on failure.
    type Error: Error;

    /// Produces the next element through `seed`, or `None` at the end.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Produces the next element, or `None` at the end.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map being deserialized.
pub trait MapAccess<'de> {
    /// Error raised on failure.
    type Error: Error;

    /// Produces the next key through `seed`, or `None` at the end.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Produces the value of the key just read, through `seed`.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Produces the next key, or `None` at the end.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Produces the value of the key just read.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Produces the next entry, or `None` at the end.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    /// Error raised on failure.
    type Error: Error;
    /// Accessor for the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Produces the variant tag through `seed`, plus the payload accessor.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Produces the variant tag, plus the payload accessor.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of the enum variant just identified.
pub trait VariantAccess<'de>: Sized {
    /// Error raised on failure.
    type Error: Error;

    /// Consumes a dataless variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Produces a single-field variant's payload through `seed`.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Produces a single-field variant's payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Produces a tuple variant's payload via `visitor`.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Produces a struct variant's payload via `visitor`.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// A value that converts into a [`Deserializer`] over itself (used for
/// enum variant indices).
pub trait IntoDeserializer<'de, E: Error> {
    /// The deserializer this value converts into.
    type Deserializer: Deserializer<'de, Error = E>;

    /// Performs the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// A [`Deserializer`] holding a single `u32` (an enum variant index).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;

    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

macro_rules! forward_to_u32 {
    ($($method:ident),* $(,)?) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    forward_to_u32! {
        deserialize_any, deserialize_bool,
        deserialize_i8, deserialize_i16, deserialize_i32, deserialize_i64, deserialize_i128,
        deserialize_u8, deserialize_u16, deserialize_u32, deserialize_u64, deserialize_u128,
        deserialize_f32, deserialize_f64, deserialize_char,
        deserialize_str, deserialize_string, deserialize_bytes, deserialize_byte_buf,
        deserialize_option, deserialize_unit, deserialize_seq, deserialize_map,
        deserialize_identifier, deserialize_ignored_any,
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}
