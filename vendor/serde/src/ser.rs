//! Serialization half of the data model (mirrors `serde::ser`).

use std::fmt::Display;

/// Raised by a [`Serializer`] when a value cannot be represented.
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be serialized into any serde data format.
pub trait Serialize {
    /// Feeds this value into `serializer`.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A data format that can receive any value in the serde data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error raised on failure.
    type Error: Error;

    /// State for serializing a variable-length sequence.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a fixed-length tuple.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a tuple struct.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a tuple enum variant.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a map.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a struct with named fields.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// State for serializing a struct enum variant.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i128`.
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u128`.
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct like `struct Marker;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct like `struct Id(u64);`.
    fn serialize_newtype_struct<T>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes a single-field enum variant.
    fn serialize_newtype_variant<T>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Begins a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable (text vs binary).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// In-progress serialization of a sequence.
pub trait SerializeSeq {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;

    /// Serializes the next element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;

    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a tuple.
pub trait SerializeTuple {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;

    /// Serializes the next element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;

    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a tuple struct.
pub trait SerializeTupleStruct {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;

    /// Serializes the next field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;

    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a tuple enum variant.
pub trait SerializeTupleVariant {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;

    /// Serializes the next field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;

    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a map.
pub trait SerializeMap {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;

    /// Serializes the next key.
    fn serialize_key<T>(&mut self, key: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;

    /// Serializes the value of the key just written.
    fn serialize_value<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;

    /// Serializes one key/value entry.
    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Self::Error>
    where
        K: Serialize + ?Sized,
        V: Serialize + ?Sized,
    {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }

    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a struct with named fields.
pub trait SerializeStruct {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;

    /// Serializes the next named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;

    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a struct enum variant.
pub trait SerializeStructVariant {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;

    /// Serializes the next named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;

    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
