//! Offline shim of the serde framework.
//!
//! This build environment cannot reach crates.io, so the workspace
//! vendors the subset of serde it actually exercises: the full
//! serializer/deserializer trait surface needed by
//! `chroma-store/src/codec.rs`, `Serialize`/`Deserialize` impls for the
//! std types that appear in Chroma object states, and (via the sibling
//! `serde_derive` shim) derives for plain, non-generic structs and
//! enums without field attributes. The data model and wire-facing
//! behaviour mirror upstream serde so swapping the real crates back in
//! is a manifest-only change.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

mod impls;

pub use crate::de::{Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};

// The derive macros live in a different namespace from the traits, so
// re-exporting both under the same names mirrors upstream serde.
pub use serde_derive::{Deserialize, Serialize};
