//! `Serialize`/`Deserialize` impls for the std types Chroma stores.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

use crate::de::{self, Deserialize, Deserializer, Visitor};
use crate::ser::{
    Serialize, SerializeMap as _, SerializeSeq as _, SerializeTuple as _, Serializer,
};

// ---------------------------------------------------------------------
// Primitives.

macro_rules! primitive {
    ($($ty:ty => $ser:ident / $de:ident / $visit:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(V)
            }
        }
    )*};
}

primitive! {
    bool => serialize_bool / deserialize_bool / visit_bool,
    i8 => serialize_i8 / deserialize_i8 / visit_i8,
    i16 => serialize_i16 / deserialize_i16 / visit_i16,
    i32 => serialize_i32 / deserialize_i32 / visit_i32,
    i64 => serialize_i64 / deserialize_i64 / visit_i64,
    i128 => serialize_i128 / deserialize_i128 / visit_i128,
    u8 => serialize_u8 / deserialize_u8 / visit_u8,
    u16 => serialize_u16 / deserialize_u16 / visit_u16,
    u32 => serialize_u32 / deserialize_u32 / visit_u32,
    u64 => serialize_u64 / deserialize_u64 / visit_u64,
    u128 => serialize_u128 / deserialize_u128 / visit_u128,
    f32 => serialize_f32 / deserialize_f32 / visit_f32,
    f64 => serialize_f64 / deserialize_f64 / visit_f64,
    char => serialize_char / deserialize_char / visit_char,
}

// usize/isize travel as u64/i64 so buffers are portable across widths,
// as in upstream serde.

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| de::Error::custom(format!("usize out of range: {v}")))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| de::Error::custom(format!("isize out of range: {v}")))
    }
}

// ---------------------------------------------------------------------
// Strings.

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

// ---------------------------------------------------------------------
// Pointers and wrappers.

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

// ---------------------------------------------------------------------
// Sequences.

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(element) = seq.next_element()? {
                    out.push(element);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

macro_rules! set_impl {
    ($set:ident, $($bound:tt)*) => {
        impl<T: Serialize> Serialize for $set<T> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.len()))?;
                for element in self {
                    seq.serialize_element(element)?;
                }
                seq.end()
            }
        }

        impl<'de, T: Deserialize<'de> + $($bound)*> Deserialize<'de> for $set<T> {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                Ok(Vec::<T>::deserialize(deserializer)?.into_iter().collect())
            }
        }
    };
}

set_impl!(BTreeSet, Ord);
set_impl!(HashSet, Eq + Hash);

// ---------------------------------------------------------------------
// Tuples (the workspace uses up to 4 elements).

macro_rules! tuple_impl {
    ($len:expr => $(($idx:tt $name:ident)),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple($len)?;
                $(tuple.serialize_element(&self.$idx)?;)+
                tuple.end()
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of {} elements", $len)
                    }
                    fn visit_seq<A: de::SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            match seq.next_element::<$name>()? {
                                Some(value) => value,
                                None => {
                                    return Err(de::Error::custom(format!(
                                        "tuple ended at element {}",
                                        $idx
                                    )))
                                }
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    };
}

tuple_impl!(1 => (0 T0));
tuple_impl!(2 => (0 T0), (1 T1));
tuple_impl!(3 => (0 T0), (1 T1), (2 T2));
tuple_impl!(4 => (0 T0), (1 T1), (2 T2), (3 T3));

// ---------------------------------------------------------------------
// Maps.

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for Vis<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_capacity_and_hasher(
                    map.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some((key, value)) = map.next_entry()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}
